// Package obs is the reproduction's causal-observability layer: it folds
// the frame-level trace bus (internal/trace) into per-connection and
// per-stream *phase spans* — dial → TLS handshake → preface → SETTINGS
// settle → per-stream first/last byte → GOAWAY/close — and feeds the
// derived latencies into the metrics registry (internal/metrics).
//
// The paper's findings all reduce to where time goes and in what order
// frames arrive (multiplexing interleave Section III-A, priority ordering
// Section III-C, PING RTT Section III-F), but raw events and aggregate
// counters cannot answer "for this slow target, was it the dial, the TLS
// handshake, the SETTINGS settle, or server think-time?". The span builder
// here answers exactly that, from the same event stream every other
// consumer (JSONL export, h2trace rendering, the attack detector) reads,
// so the CLI and live paths cannot drift.
//
// Three artifacts ride on the builder: per-phase latency histograms with
// slow-sample exemplars (monitor.go), a bounded anomaly flight recorder
// that turns triggers into JSONL forensic dumps (flightrec.go), and a live
// run dashboard served from the -debug-addr mux (dashboard.go).
package obs

import (
	"fmt"
	"io"
	"sort"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/trace"
)

// Phase names, in causal order. Dial and TLS come from trace.Region pairs
// emitted by the dial path; the rest are derived from frame orderings.
const (
	// PhaseDial spans the transport dial (TCP connect), from the region the
	// prober opens around Dialer.Dial.
	PhaseDial = "dial"
	// PhaseTLS spans the TLS handshake + ALPN negotiation region.
	PhaseTLS = "tls"
	// PhasePreface spans connection open to the first non-ACK SETTINGS
	// written — how long the local endpoint took to start talking HTTP/2.
	PhasePreface = "preface"
	// PhaseSettle spans the first non-ACK SETTINGS written to the first
	// non-ACK SETTINGS read — the SETTINGS exchange settling time.
	PhaseSettle = "settle"
	// PhaseFirstByte spans a stream's request HEADERS to the first
	// response-direction HEADERS/DATA on that stream.
	PhaseFirstByte = "first-byte"
	// PhaseLastByte spans a stream's request HEADERS to its last
	// response-direction DATA frame.
	PhaseLastByte = "last-byte"
	// PhaseClose spans the first GOAWAY (either direction, falling back to
	// the last frame) to connection close.
	PhaseClose = "close"
)

// Phases returns every phase name in causal order — the iteration order for
// histogram registration, dashboards, and rendered span tables.
func Phases() []string {
	return []string{PhaseDial, PhaseTLS, PhasePreface, PhaseSettle, PhaseFirstByte, PhaseLastByte, PhaseClose}
}

// StreamPhases is the per-stream slice of a connection's causal span.
type StreamPhases struct {
	// StreamID identifies the stream.
	StreamID uint32 `json:"stream"`
	// Request is when the stream's first HEADERS fired (the request going
	// out on a client trace, coming in on a server trace).
	Request time.Time `json:"request"`
	// FirstByte is the request→first-response-byte latency (0 if no
	// response-direction HEADERS/DATA was seen).
	FirstByte time.Duration `json:"firstByteNs"`
	// LastByte is the request→last-response-DATA latency (0 if no
	// response-direction DATA was seen).
	LastByte time.Duration `json:"lastByteNs"`
}

// ConnPhases is one connection's reconstructed causal span: lifecycle
// bounds plus one duration per connection-level phase and a nested span
// per stream. A zero duration means the phase was not observed.
type ConnPhases struct {
	// Conn is the connection's trace ID.
	Conn uint64 `json:"conn"`
	// Opened and Closed report whether the lifecycle events were seen.
	Opened bool `json:"opened"`
	Closed bool `json:"closed"`
	// Detail carries the ConnOpen annotation (dialed address/authority).
	Detail string `json:"detail,omitempty"`
	// First and Last bound every event attributed to the connection.
	First time.Time `json:"first"`
	Last  time.Time `json:"last"`
	// Dial, TLS, Preface, Settle, and Close are the connection-level phase
	// durations (see the Phase* constants).
	Dial    time.Duration `json:"dialNs,omitempty"`
	TLS     time.Duration `json:"tlsNs,omitempty"`
	Preface time.Duration `json:"prefaceNs,omitempty"`
	Settle  time.Duration `json:"settleNs,omitempty"`
	Close   time.Duration `json:"closeNs,omitempty"`
	// Streams holds the per-stream spans, ordered by stream ID.
	Streams []StreamPhases `json:"streams,omitempty"`
}

// Phase returns the named connection-level phase duration (0 for stream
// phases and unknown names — those live on StreamPhases).
func (c *ConnPhases) Phase(name string) time.Duration {
	switch name {
	case PhaseDial:
		return c.Dial
	case PhaseTLS:
		return c.TLS
	case PhasePreface:
		return c.Preface
	case PhaseSettle:
		return c.Settle
	case PhaseClose:
		return c.Close
	default:
		return 0
	}
}

// Duration is the wall time between the connection's first and last events.
func (c *ConnPhases) Duration() time.Duration { return c.Last.Sub(c.First) }

// preConnRegion reports whether a region name is a pre-connection phase a
// dialer may emit before connection identity exists (conn 0). Probe-phase
// events (tracer-global Phase markers) also carry conn 0 but use battery
// names ("settings", "priority", ...), never these.
func preConnRegion(name string) bool { return name == PhaseDial || name == PhaseTLS }

// connState accumulates one connection's evidence while events stream in.
type connState struct {
	c           ConnPhases
	openAt      time.Time
	firstFrame  time.Time
	sentSet     time.Time // first non-ACK SETTINGS written
	recvSet     time.Time // first non-ACK SETTINGS read
	goawayAt    time.Time
	lastFrame   time.Time
	closeAt     time.Time
	regions     map[string]time.Time // open Region starts by name
	streams     map[uint32]*streamState
	streamOrder []uint32
}

// streamState accumulates one stream's evidence.
type streamState struct {
	s StreamPhases
	// respRecv is true when the response direction is "received" (the
	// request HEADERS was sent by the traced endpoint — a client trace).
	respRecv bool
}

// Builder folds a trace event stream into ConnPhases incrementally. Feed
// events in emit order (Snapshot and Subscription both deliver that); call
// Finish for the remaining connections. Builder is not safe for concurrent
// use — each consumer owns one.
type Builder struct {
	conns map[uint64]*connState
	order []uint64

	// pendingStart holds conn-0 pre-connection region starts; pendingDur
	// holds completed conn-0 regions awaiting the next ConnOpen, which they
	// are attributed to (a dialer's TLS handshake finishes before the
	// connection has an identity).
	pendingStart map[string]time.Time
	pendingDur   map[string]time.Duration

	// OnConn, when set, receives each connection's finalized span as its
	// ConnClose event streams through — the live-path hook (Monitor.Watch).
	// Connections that never close are delivered by Finish.
	OnConn func(ConnPhases)
}

// NewBuilder returns an empty span builder.
func NewBuilder() *Builder {
	return &Builder{
		conns:        make(map[uint64]*connState),
		pendingStart: make(map[string]time.Time),
		pendingDur:   make(map[string]time.Duration),
	}
}

// conn returns (creating if needed) the state for id, folding at into its
// event bounds.
func (b *Builder) conn(id uint64, at time.Time) *connState {
	cs := b.conns[id]
	if cs == nil {
		cs = &connState{
			c:       ConnPhases{Conn: id, First: at, Last: at},
			regions: make(map[string]time.Time),
			streams: make(map[uint32]*streamState),
		}
		b.conns[id] = cs
		b.order = append(b.order, id)
	}
	if at.Before(cs.c.First) {
		cs.c.First = at
	}
	if at.After(cs.c.Last) {
		cs.c.Last = at
	}
	return cs
}

// Feed folds one event into the builder.
func (b *Builder) Feed(ev trace.Event) {
	switch ev.Kind {
	case trace.KindPhaseStart:
		if !preConnRegion(ev.Phase) {
			return
		}
		if ev.Conn == 0 {
			b.pendingStart[ev.Phase] = ev.At
			return
		}
		b.conn(ev.Conn, ev.At).regions[ev.Phase] = ev.At

	case trace.KindPhaseEnd:
		if !preConnRegion(ev.Phase) {
			return
		}
		if ev.Conn == 0 {
			if start, ok := b.pendingStart[ev.Phase]; ok {
				delete(b.pendingStart, ev.Phase)
				b.pendingDur[ev.Phase] = ev.At.Sub(start)
			}
			return
		}
		cs := b.conn(ev.Conn, ev.At)
		if start, ok := cs.regions[ev.Phase]; ok {
			delete(cs.regions, ev.Phase)
			cs.setRegion(ev.Phase, ev.At.Sub(start))
		}

	case trace.KindConnOpen:
		cs := b.conn(ev.Conn, ev.At)
		cs.c.Opened = true
		cs.openAt = ev.At
		if cs.c.Detail == "" {
			cs.c.Detail = ev.Detail
		}
		// Claim completed pre-connection regions: the dialer that emitted
		// them was establishing this connection.
		for name, d := range b.pendingDur {
			if cs.c.Phase(name) == 0 {
				cs.setRegion(name, d)
			}
			delete(b.pendingDur, name)
		}

	case trace.KindConnClose:
		cs := b.conn(ev.Conn, ev.At)
		cs.c.Closed = true
		cs.closeAt = ev.At
		if b.OnConn != nil {
			b.OnConn(b.finalize(cs))
			delete(b.conns, ev.Conn)
			for i, id := range b.order {
				if id == ev.Conn {
					b.order = append(b.order[:i], b.order[i+1:]...)
					break
				}
			}
		}

	case trace.KindFrameSent, trace.KindFrameRecv:
		cs := b.conn(ev.Conn, ev.At)
		if cs.firstFrame.IsZero() {
			cs.firstFrame = ev.At
		}
		cs.lastFrame = ev.At
		sent := ev.Kind == trace.KindFrameSent
		switch ev.FrameType {
		case frame.TypeSettings:
			if !ev.Flags.Has(frame.FlagAck) {
				if sent && cs.sentSet.IsZero() {
					cs.sentSet = ev.At
				}
				if !sent && cs.recvSet.IsZero() {
					cs.recvSet = ev.At
				}
			}
		case frame.TypeGoAway:
			if cs.goawayAt.IsZero() {
				cs.goawayAt = ev.At
			}
		}
		if ev.StreamID != 0 {
			b.feedStream(cs, ev, sent)
		}
	}
}

// setRegion stores a completed dial/tls region duration.
func (cs *connState) setRegion(name string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	switch name {
	case PhaseDial:
		if cs.c.Dial == 0 {
			cs.c.Dial = d
		}
	case PhaseTLS:
		if cs.c.TLS == 0 {
			cs.c.TLS = d
		}
	}
}

// feedStream folds a non-zero-stream frame event into its stream span.
func (b *Builder) feedStream(cs *connState, ev trace.Event, sent bool) {
	ss := cs.streams[ev.StreamID]
	if ss == nil {
		// A stream span begins at its first HEADERS — the request. Frames
		// on streams whose HEADERS predates the ring window are skipped:
		// without the request landmark the latencies would be fiction.
		if ev.FrameType != frame.TypeHeaders {
			return
		}
		ss = &streamState{
			s:        StreamPhases{StreamID: ev.StreamID, Request: ev.At},
			respRecv: sent,
		}
		cs.streams[ev.StreamID] = ss
		cs.streamOrder = append(cs.streamOrder, ev.StreamID)
		return
	}
	// Response direction is the opposite of the request HEADERS' direction.
	if sent == ss.respRecv {
		return
	}
	switch ev.FrameType {
	case frame.TypeHeaders, frame.TypeData:
		if ss.s.FirstByte == 0 {
			ss.s.FirstByte = ev.At.Sub(ss.s.Request)
		}
		if ev.FrameType == frame.TypeData {
			ss.s.LastByte = ev.At.Sub(ss.s.Request)
		}
	}
}

// finalize derives the remaining phases for one connection and returns its
// completed span.
func (b *Builder) finalize(cs *connState) ConnPhases {
	c := cs.c
	// Preface: connection identity (open, else first frame) to the first
	// non-ACK SETTINGS written.
	anchor := cs.openAt
	if anchor.IsZero() {
		anchor = cs.firstFrame
	}
	if !cs.sentSet.IsZero() && !anchor.IsZero() {
		if d := cs.sentSet.Sub(anchor); d > 0 {
			c.Preface = d
		}
	}
	// Settle: SETTINGS written to SETTINGS read. A peer that spoke first
	// settles in zero time.
	if !cs.sentSet.IsZero() && !cs.recvSet.IsZero() {
		if d := cs.recvSet.Sub(cs.sentSet); d > 0 {
			c.Settle = d
		}
	}
	// Close: GOAWAY (else last frame) to ConnClose.
	if !cs.closeAt.IsZero() {
		from := cs.goawayAt
		if from.IsZero() {
			from = cs.lastFrame
		}
		if !from.IsZero() {
			if d := cs.closeAt.Sub(from); d > 0 {
				c.Close = d
			}
		}
	}
	c.Streams = make([]StreamPhases, 0, len(cs.streamOrder))
	for _, id := range cs.streamOrder {
		c.Streams = append(c.Streams, cs.streams[id].s)
	}
	sort.Slice(c.Streams, func(i, j int) bool { return c.Streams[i].StreamID < c.Streams[j].StreamID })
	return c
}

// Finish finalizes and returns every connection still held by the builder
// (those whose ConnClose was not seen, or all of them when OnConn is
// unset), ordered by connection ID. The builder is reusable afterwards for
// a fresh event stream.
func (b *Builder) Finish() []ConnPhases {
	out := make([]ConnPhases, 0, len(b.order))
	for _, id := range b.order {
		out = append(out, b.finalize(b.conns[id]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Conn < out[j].Conn })
	b.conns = make(map[uint64]*connState)
	b.order = nil
	b.pendingStart = make(map[string]time.Time)
	b.pendingDur = make(map[string]time.Duration)
	return out
}

// BuildConns folds a complete event stream (a Snapshot, or trace.Read
// output) into per-connection phase spans — the batch entry point shared by
// h2trace -spans, the flight recorder's dump summaries, and the census
// monitor.
func BuildConns(events []trace.Event) []ConnPhases {
	b := NewBuilder()
	for _, ev := range events {
		b.Feed(ev)
	}
	return b.Finish()
}

// fmtDur renders a duration compactly for span tables ("-" when the phase
// was not observed).
func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// yesNo renders a lifecycle flag.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// RenderConns writes the human-readable phase-span breakdown for a trace —
// the h2trace -spans view and the flight recorder's summary section share
// this renderer, so the forensic dump and the CLI cannot disagree.
func RenderConns(w io.Writer, target string, conns []ConnPhases) {
	label := target
	if label == "" {
		label = "(unnamed)"
	}
	fmt.Fprintf(w, "causal spans for %s: %d connection(s)\n", label, len(conns))
	for i := range conns {
		c := &conns[i]
		fmt.Fprintf(w, "conn %d  open=%s close=%s", c.Conn, yesNo(c.Opened), yesNo(c.Closed))
		if c.Detail != "" {
			fmt.Fprintf(w, "  %s", c.Detail)
		}
		fmt.Fprintf(w, "  total=%s\n", fmtDur(c.Duration()))
		fmt.Fprintf(w, "  dial=%s tls=%s preface=%s settle=%s close=%s\n",
			fmtDur(c.Dial), fmtDur(c.TLS), fmtDur(c.Preface), fmtDur(c.Settle), fmtDur(c.Close))
		for _, s := range c.Streams {
			fmt.Fprintf(w, "  stream %d: first-byte=%s last-byte=%s\n",
				s.StreamID, fmtDur(s.FirstByte), fmtDur(s.LastByte))
		}
	}
}
