package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"h2scope/internal/metrics"
	"h2scope/internal/trace"
)

// PhaseMetricName is the registered histogram family for phase latencies;
// one histogram per phase, labeled h2_phase_duration_seconds{phase="dial"}.
// Observed values are nanoseconds bucketed per millisecond, matching the
// scan engine's latency histogram accounting.
const PhaseMetricName = "h2_phase_duration_seconds"

// Anomaly is one trigger-worthy observation the monitor surfaced: a phase
// blowing past its own p99, or an error-class spike in the scan stream.
// External triggers (detector hits, conformance failures) construct these
// directly and hand them to a FlightRecorder.
type Anomaly struct {
	// Reason classifies the trigger ("p99-blowout:dial", "error-spike:tls",
	// "detector:rapid-reset", ...).
	Reason string `json:"reason"`
	// Target names the scanned unit, when known.
	Target string `json:"target,omitempty"`
	// Conn is the trace connection ID behind the trigger (0 if none).
	Conn uint64 `json:"conn,omitempty"`
	// Phase is the phase that blew out (empty for non-phase triggers).
	Phase string `json:"phase,omitempty"`
	// Duration is the observed value behind a blowout trigger.
	Duration time.Duration `json:"durationNs,omitempty"`
	// At is when the anomaly was noticed.
	At time.Time `json:"at"`
	// Events carries the raw trace events behind the trigger, when the
	// raising path had them in hand (the census per-target path does; live
	// watchers snapshot their own tracer instead). They ride along so an
	// OnAnomaly hook can hand them straight to FlightRecorder.Dump, and are
	// excluded from the anomaly's own JSON form.
	Events []trace.Event `json:"-"`
}

// Exemplar references the concrete target behind a slow histogram sample,
// so a dashboard p99 is one click away from its forensic trace.
type Exemplar struct {
	// Phase is the histogram the sample landed in.
	Phase string `json:"phase"`
	// Target names the scanned unit.
	Target string `json:"target,omitempty"`
	// Conn is the trace connection ID.
	Conn uint64 `json:"conn"`
	// TraceFile is the exported JSONL trace path, when the run keeps one.
	TraceFile string `json:"traceFile,omitempty"`
	// Duration is the observed phase latency.
	Duration time.Duration `json:"durationNs"`
	// At is the observation time.
	At time.Time `json:"at"`
}

// MonitorConfig configures a Monitor. The zero value works: histograms stay
// unregistered, blowout and spike detection run with defaults, anomalies go
// nowhere.
type MonitorConfig struct {
	// Registry, when set, registers the phase histograms
	// (h2_phase_duration_seconds{phase=...}) and the monitor's counters
	// (h2_obs_targets_total, h2_obs_anomalies_total) there.
	Registry *metrics.Registry
	// BlowoutFactor triggers an anomaly when a phase observation exceeds
	// factor × that phase's running p99 (default 8; negative disables).
	BlowoutFactor float64
	// BlowoutMinSamples is how many observations a phase needs before
	// blowout detection arms (default 32).
	BlowoutMinSamples int
	// ErrorSpikeWindow is the sliding window of recent target outcomes
	// consulted for spike detection (default 64).
	ErrorSpikeWindow int
	// ErrorSpikeThreshold triggers an anomaly when one failure kind
	// accounts for at least this many outcomes in the window (default 8).
	ErrorSpikeThreshold int
	// ExemplarsPerPhase bounds the slowest-sample references kept per phase
	// (default 4).
	ExemplarsPerPhase int
	// OnAnomaly, when set, receives each anomaly synchronously — the
	// flight-recorder wiring point. It must not call back into the Monitor.
	OnAnomaly func(Anomaly)
}

func (c *MonitorConfig) withDefaults() MonitorConfig {
	out := *c
	if out.BlowoutFactor == 0 {
		out.BlowoutFactor = 8
	}
	if out.BlowoutMinSamples <= 0 {
		out.BlowoutMinSamples = 32
	}
	if out.ErrorSpikeWindow <= 0 {
		out.ErrorSpikeWindow = 64
	}
	if out.ErrorSpikeThreshold <= 0 {
		out.ErrorSpikeThreshold = 8
	}
	if out.ExemplarsPerPhase <= 0 {
		out.ExemplarsPerPhase = 4
	}
	return out
}

// Monitor consumes reconstructed spans, feeds the per-phase latency
// histograms, keeps slow-sample exemplars, and raises anomalies (p99
// blowouts, error-class spikes). All methods are safe for concurrent use.
type Monitor struct {
	cfg   MonitorConfig
	hists map[string]*metrics.Histogram

	targets   *metrics.Counter
	anomalies *metrics.Counter

	mu        sync.Mutex
	exemplars map[string][]Exemplar
	outcomes  []string // sliding window of failure kinds ("" = success)
	outNext   int
	outCount  int
}

// NewMonitor builds a monitor, registering its instruments into
// cfg.Registry when one is given.
func NewMonitor(cfg MonitorConfig) *Monitor {
	m := &Monitor{
		cfg:       cfg.withDefaults(),
		hists:     make(map[string]*metrics.Histogram, len(Phases())),
		exemplars: make(map[string][]Exemplar),
	}
	m.outcomes = make([]string, m.cfg.ErrorSpikeWindow)
	unit := int64(time.Millisecond)
	for _, p := range Phases() {
		if m.cfg.Registry != nil {
			m.hists[p] = m.cfg.Registry.Histogram(
				metrics.Label(PhaseMetricName, "phase", p),
				"per-phase causal span latency (nanosecond values bucketed per millisecond)",
				unit, 0)
		} else {
			m.hists[p] = metrics.NewHistogram(unit, 0)
		}
	}
	if m.cfg.Registry != nil {
		m.targets = m.cfg.Registry.Counter("h2_obs_targets_total",
			"targets whose spans the observability monitor folded in")
		m.anomalies = m.cfg.Registry.Counter("h2_obs_anomalies_total",
			"anomalies the observability monitor raised (blowouts and error spikes)")
	} else {
		m.targets = metrics.NewCounter()
		m.anomalies = metrics.NewCounter()
	}
	return m
}

// raise counts and delivers one anomaly.
func (m *Monitor) raise(a Anomaly) {
	m.anomalies.Inc()
	if m.cfg.Registry != nil {
		reason := a.Reason
		if i := strings.IndexByte(reason, ':'); i > 0 {
			reason = reason[:i]
		}
		m.cfg.Registry.Counter(metrics.Label("h2_obs_anomaly_reasons_total", "reason", reason),
			"anomalies by trigger class").Inc()
	}
	if m.cfg.OnAnomaly != nil {
		m.cfg.OnAnomaly(a)
	}
}

// observePhase records one phase latency, maintaining exemplars and
// blowout detection. events, when non-nil, rides along on any anomaly
// raised so the flight recorder can dump the triggering stream.
func (m *Monitor) observePhase(phase, target, traceFile string, conn uint64, d time.Duration, at time.Time, events []trace.Event) {
	if d <= 0 {
		return
	}
	h := m.hists[phase]
	if h == nil {
		return
	}
	// Blowout check against the histogram state *before* this observation,
	// so one catastrophic sample cannot hide itself by dragging p99 up.
	var blowout bool
	if m.cfg.BlowoutFactor > 0 {
		snap := h.Snapshot()
		if snap.Count >= int64(m.cfg.BlowoutMinSamples) {
			p99 := snap.Quantile(0.99)
			if p99 > 0 && float64(d.Nanoseconds()) > m.cfg.BlowoutFactor*float64(p99) {
				blowout = true
			}
		}
	}
	h.Observe(d.Nanoseconds())

	m.mu.Lock()
	exs := m.exemplars[phase]
	if len(exs) < m.cfg.ExemplarsPerPhase || d > exs[len(exs)-1].Duration {
		exs = append(exs, Exemplar{Phase: phase, Target: target, Conn: conn, TraceFile: traceFile, Duration: d, At: at})
		sort.Slice(exs, func(i, j int) bool { return exs[i].Duration > exs[j].Duration })
		if len(exs) > m.cfg.ExemplarsPerPhase {
			exs = exs[:m.cfg.ExemplarsPerPhase]
		}
		m.exemplars[phase] = exs
	}
	m.mu.Unlock()

	if blowout {
		m.raise(Anomaly{
			Reason:   "p99-blowout:" + phase,
			Target:   target,
			Conn:     conn,
			Phase:    phase,
			Duration: d,
			At:       at,
			Events:   events,
		})
	}
}

// ObserveConn folds one reconstructed connection span into the histograms.
func (m *Monitor) ObserveConn(target, traceFile string, c ConnPhases) {
	m.observeConn(target, traceFile, c, nil)
}

func (m *Monitor) observeConn(target, traceFile string, c ConnPhases, events []trace.Event) {
	at := c.Last
	for _, p := range []string{PhaseDial, PhaseTLS, PhasePreface, PhaseSettle, PhaseClose} {
		m.observePhase(p, target, traceFile, c.Conn, c.Phase(p), at, events)
	}
	for _, s := range c.Streams {
		m.observePhase(PhaseFirstByte, target, traceFile, c.Conn, s.FirstByte, at, events)
		m.observePhase(PhaseLastByte, target, traceFile, c.Conn, s.LastByte, at, events)
	}
}

// ObserveTarget reconstructs spans from one target's full event stream (the
// census path: called from the scan engine's per-target trace flush) and
// folds them in. Anomalies raised here carry events so the flight recorder
// can dump the triggering stream verbatim.
func (m *Monitor) ObserveTarget(target, traceFile string, events []trace.Event) {
	m.targets.Inc()
	for _, c := range BuildConns(events) {
		m.observeConn(target, traceFile, c, events)
	}
}

// RecordOutcome feeds one target's scan disposition into spike detection:
// kind is the classified failure kind, empty for success. When one kind
// fills ErrorSpikeThreshold slots of the window, an error-spike anomaly is
// raised and the window resets (re-arming the detector).
func (m *Monitor) RecordOutcome(target, kind string) {
	var spike bool
	m.mu.Lock()
	m.outcomes[m.outNext] = kind
	m.outNext = (m.outNext + 1) % len(m.outcomes)
	if m.outCount < len(m.outcomes) {
		m.outCount++
	}
	if kind != "" {
		n := 0
		for i := 0; i < m.outCount; i++ {
			if m.outcomes[i] == kind {
				n++
			}
		}
		if n >= m.cfg.ErrorSpikeThreshold {
			spike = true
			for i := range m.outcomes {
				m.outcomes[i] = ""
			}
			m.outNext, m.outCount = 0, 0
		}
	}
	m.mu.Unlock()
	if spike {
		m.raise(Anomaly{Reason: "error-spike:" + kind, Target: target, At: time.Now()})
	}
}

// Targets returns how many targets were folded in via ObserveTarget.
func (m *Monitor) Targets() int64 { return m.targets.Value() }

// Anomalies returns how many anomalies the monitor raised.
func (m *Monitor) Anomalies() int64 { return m.anomalies.Value() }

// PhaseSnapshot returns the named phase histogram's current state (nil for
// unknown phases).
func (m *Monitor) PhaseSnapshot(phase string) *metrics.HistogramSnapshot {
	h := m.hists[phase]
	if h == nil {
		return nil
	}
	s := h.Snapshot()
	return &s
}

// PhaseQuantiles returns the named phase's approximate p50 and p99 (clamped
// into the exact observed [min, max] range) plus its sample count.
func (m *Monitor) PhaseQuantiles(phase string) (p50, p99 time.Duration, count int64) {
	s := m.PhaseSnapshot(phase)
	if s == nil || s.Count == 0 {
		return 0, 0, 0
	}
	clamp := func(v int64) time.Duration {
		if v < s.Min {
			v = s.Min
		}
		if v > s.Max {
			v = s.Max
		}
		return time.Duration(v)
	}
	return clamp(s.Quantile(0.50)), clamp(s.Quantile(0.99)), s.Count
}

// Exemplars returns the retained slow-sample references, slowest first.
func (m *Monitor) Exemplars() []Exemplar {
	m.mu.Lock()
	var out []Exemplar
	for _, exs := range m.exemplars {
		out = append(out, exs...)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// ProgressColumns renders the compact phase-latency columns the census
// appends to its -progress line: "dial=p50/p99 tls=p50/p99 settle=p50/p99"
// (phases with no samples render as "-").
func (m *Monitor) ProgressColumns() string {
	var b strings.Builder
	for i, p := range []string{PhaseDial, PhaseTLS, PhaseSettle} {
		if i > 0 {
			b.WriteByte(' ')
		}
		p50, p99, n := m.PhaseQuantiles(p)
		if n == 0 {
			fmt.Fprintf(&b, "%s=-", p)
			continue
		}
		fmt.Fprintf(&b, "%s=%s/%s", p, fmtDur(p50), fmtDur(p99))
	}
	return b.String()
}

// Watch attaches the monitor to a live tracer (the testbed server's bus): a
// subscription is drained in a background goroutine through a streaming
// span builder, and each connection's span is folded in as its ConnClose
// streams through. The subscription's queue health is exported as
// h2_trace_sub_*{sub="obs"} gauges when the monitor has a registry. The
// returned stop function drains what remains, folds in still-open
// connections, and detaches; it is idempotent.
func (m *Monitor) Watch(tr *trace.Tracer, target string, buffer int) (stop func()) {
	sub := tr.Subscribe(buffer)
	if sub == nil {
		return func() {}
	}
	if m.cfg.Registry != nil {
		sub.ExportMetrics(m.cfg.Registry, "obs")
	}
	b := NewBuilder()
	b.OnConn = func(c ConnPhases) { m.ObserveConn(target, "", c) }

	var mu sync.Mutex // serializes builder access between loop and stop
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		var buf []trace.Event
		for {
			select {
			case <-sub.C():
				buf = sub.Drain(buf[:0])
				mu.Lock()
				for _, ev := range buf {
					b.Feed(ev)
				}
				mu.Unlock()
			case <-done:
				return
			}
		}
	}()

	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
			mu.Lock()
			for _, ev := range sub.Drain(nil) {
				b.Feed(ev)
			}
			// Connections that never closed still carry measured dial/TLS/
			// preface/settle phases; fold them in rather than losing them.
			for _, c := range b.Finish() {
				m.ObserveConn(target, "", c)
			}
			mu.Unlock()
			sub.Close()
		})
	}
}
