package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/metrics"
	"h2scope/internal/trace"
)

func TestMonitorObserveTargetFeedsHistograms(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMonitor(MonitorConfig{Registry: reg})
	m.ObserveTarget("site-000001.example", "traces/site-000001.jsonl", clientEvents())

	if m.Targets() != 1 {
		t.Errorf("Targets = %d", m.Targets())
	}
	p50, p99, n := m.PhaseQuantiles(PhaseDial)
	if n != 1 || p50 != 5*time.Millisecond || p99 != 5*time.Millisecond {
		t.Errorf("dial quantiles = %v/%v (n=%d), want 5ms/5ms (n=1)", p50, p99, n)
	}
	if _, _, n := m.PhaseQuantiles(PhaseFirstByte); n != 1 {
		t.Errorf("first-byte count = %d", n)
	}
	// The histograms land in the registry under the labeled family.
	var found bool
	for _, s := range reg.Snapshot() {
		if s.Name == metrics.Label(PhaseMetricName, "phase", PhaseDial) {
			found = true
		}
	}
	if !found {
		t.Errorf("registry missing %s", metrics.Label(PhaseMetricName, "phase", PhaseDial))
	}

	exs := m.Exemplars()
	if len(exs) == 0 {
		t.Fatal("no exemplars retained")
	}
	for _, ex := range exs {
		if ex.Target != "site-000001.example" || ex.TraceFile != "traces/site-000001.jsonl" {
			t.Errorf("exemplar missing references: %+v", ex)
		}
	}
}

func TestMonitorBlowoutAnomaly(t *testing.T) {
	var got []Anomaly
	m := NewMonitor(MonitorConfig{
		BlowoutFactor:     2,
		BlowoutMinSamples: 4,
		OnAnomaly:         func(a Anomaly) { got = append(got, a) },
	})
	normal := ConnPhases{Conn: 1, Dial: time.Millisecond, Last: testBase}
	for i := 0; i < 4; i++ {
		m.ObserveConn("steady.example", "", normal)
	}
	if len(got) != 0 {
		t.Fatalf("anomaly before blowout: %+v", got)
	}
	m.observeConn("slow.example", "", ConnPhases{Conn: 9, Dial: time.Second, Last: testBase}, clientEvents())
	if len(got) != 1 {
		t.Fatalf("anomalies = %d, want 1", len(got))
	}
	a := got[0]
	if a.Reason != "p99-blowout:dial" || a.Target != "slow.example" || a.Phase != PhaseDial ||
		a.Conn != 9 || a.Duration != time.Second || len(a.Events) == 0 {
		t.Errorf("anomaly = %+v", a)
	}
	if m.Anomalies() != 1 {
		t.Errorf("Anomalies = %d", m.Anomalies())
	}
}

func TestMonitorErrorSpike(t *testing.T) {
	var got []Anomaly
	m := NewMonitor(MonitorConfig{
		ErrorSpikeWindow:    8,
		ErrorSpikeThreshold: 3,
		OnAnomaly:           func(a Anomaly) { got = append(got, a) },
	})
	m.RecordOutcome("a", "tls")
	m.RecordOutcome("b", "")
	m.RecordOutcome("c", "tls")
	if len(got) != 0 {
		t.Fatalf("premature spike: %+v", got)
	}
	m.RecordOutcome("d", "tls")
	if len(got) != 1 || got[0].Reason != "error-spike:tls" || got[0].Target != "d" {
		t.Fatalf("spike anomaly = %+v", got)
	}
	// The window cleared: the detector re-arms from scratch.
	m.RecordOutcome("e", "tls")
	m.RecordOutcome("f", "tls")
	if len(got) != 1 {
		t.Errorf("spike re-fired before threshold: %d anomalies", len(got))
	}
}

func TestMonitorProgressColumns(t *testing.T) {
	m := NewMonitor(MonitorConfig{})
	if got := m.ProgressColumns(); got != "dial=- tls=- settle=-" {
		t.Errorf("empty columns = %q", got)
	}
	m.ObserveTarget("x", "", clientEvents())
	got := m.ProgressColumns()
	if !strings.Contains(got, "dial=5.0ms/5.0ms") || !strings.Contains(got, "tls=7.0ms/7.0ms") ||
		!strings.Contains(got, "settle=6.0ms/6.0ms") {
		t.Errorf("columns = %q", got)
	}
}

func TestMonitorWatchStreamsSpans(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMonitor(MonitorConfig{Registry: reg})
	tr := trace.New(0)
	stop := m.Watch(tr, "testbed.example", 0)

	id := tr.ConnID()
	tr.ConnOpen(id, "client")
	tr.Frame(id, true, frame.Header{Type: frame.TypeSettings})
	tr.Frame(id, false, frame.Header{Type: frame.TypeSettings})
	tr.Frame(id, false, frame.Header{Type: frame.TypeHeaders, StreamID: 1})
	tr.Frame(id, true, frame.Header{Type: frame.TypeHeaders, StreamID: 1})
	tr.Frame(id, true, frame.Header{Type: frame.TypeData, StreamID: 1, Flags: frame.FlagEndStream})
	tr.ConnClose(id, "")

	// A second connection that never closes: folded in by stop's Finish.
	id2 := tr.ConnID()
	tr.ConnOpen(id2, "client2")
	tr.Frame(id2, true, frame.Header{Type: frame.TypeSettings})
	tr.Frame(id2, false, frame.Header{Type: frame.TypeSettings})

	stop()
	stop() // idempotent

	if _, _, n := m.PhaseQuantiles(PhaseSettle); n != 2 {
		t.Errorf("settle count = %d, want 2 (one per connection)", n)
	}
	// Subscription health gauges registered under sub="obs".
	var found bool
	for _, s := range reg.Snapshot() {
		if s.Name == metrics.Label("h2_trace_sub_dropped_total", "sub", "obs") {
			found = true
		}
	}
	if !found {
		t.Error("registry missing h2_trace_sub_dropped_total{sub=\"obs\"}")
	}
}

func TestMonitorWatchNilTracer(t *testing.T) {
	m := NewMonitor(MonitorConfig{})
	stop := m.Watch(nil, "x", 0)
	stop() // must not panic
}

// TestMonitorConcurrentHammer drives every monitor entry point, a live
// Watch, and flight-recorder dumps from concurrent goroutines; run under
// -race this is the span layer's thread-safety proof.
func TestMonitorConcurrentHammer(t *testing.T) {
	reg := metrics.NewRegistry()
	rec, err := NewFlightRecorder(FlightRecorderConfig{Dir: t.TempDir(), MinInterval: -1, MaxDumps: 1 << 20, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(MonitorConfig{
		Registry:            reg,
		BlowoutFactor:       2,
		BlowoutMinSamples:   4,
		ErrorSpikeWindow:    8,
		ErrorSpikeThreshold: 4,
		OnAnomaly: func(a Anomaly) {
			if _, err := rec.Dump(a, a.Events); err != nil {
				t.Errorf("dump: %v", err)
			}
		},
	})
	tr := trace.New(0)
	stop := m.Watch(tr, "hammer", 0)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m.ObserveTarget("target", "", clientEvents())
				m.RecordOutcome("target", []string{"", "tls", "dial"}[i%3])
				_ = m.ProgressColumns()
				_ = m.Exemplars()
				id := tr.ConnID()
				tr.ConnOpen(id, "hammer")
				tr.Frame(id, true, frame.Header{Type: frame.TypeSettings})
				tr.Frame(id, false, frame.Header{Type: frame.TypeSettings})
				tr.ConnClose(id, "")
			}
		}(g)
	}
	wg.Wait()
	stop()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Targets() != 200 {
		t.Errorf("Targets = %d, want 200", m.Targets())
	}
}
