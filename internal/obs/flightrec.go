package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"h2scope/internal/metrics"
	"h2scope/internal/trace"
)

// FlightRecorderConfig configures a FlightRecorder. Only Dir is required.
type FlightRecorderConfig struct {
	// Dir is the directory anomaly dumps are written into (created if
	// needed).
	Dir string
	// Tail bounds how many trailing events one dump retains (default 256).
	Tail int
	// MaxDumps bounds how many dumps one recorder writes over its lifetime;
	// further triggers are counted as suppressed (default 32).
	MaxDumps int
	// MinInterval rate-limits dumps: triggers arriving sooner than this
	// after the previous dump are suppressed (default 1s; negative
	// disables the rate limit).
	MinInterval time.Duration
	// Registry, when set, exports h2_flightrec_dumps_total and
	// h2_flightrec_suppressed_total counters there.
	Registry *metrics.Registry
	// Clock overrides the rate-limit clock (tests; default time.Now).
	Clock func() time.Time
}

func (c *FlightRecorderConfig) withDefaults() FlightRecorderConfig {
	out := *c
	if out.Tail <= 0 {
		out.Tail = 256
	}
	if out.MaxDumps <= 0 {
		out.MaxDumps = 32
	}
	if out.MinInterval == 0 {
		out.MinInterval = time.Second
	}
	if out.Clock == nil {
		out.Clock = time.Now
	}
	return out
}

// dumpRef is one dump's manifest entry.
type dumpRef struct {
	File   string    `json:"file"`
	Reason string    `json:"reason"`
	Target string    `json:"target,omitempty"`
	At     time.Time `json:"at"`
	Events int       `json:"events"`
}

// FlightRecorder turns anomalies into bounded JSONL forensic dumps: the
// last Tail trace events plus the reconstructed span summary, one file per
// trigger, rate-limited and capped so a 12-hour census that goes sideways
// leaves evidence without filling the disk. All methods are safe for
// concurrent use.
type FlightRecorder struct {
	cfg FlightRecorderConfig

	dumpsC      *metrics.Counter
	suppressedC *metrics.Counter

	mu       sync.Mutex
	seq      int
	lastDump time.Time
	refs     []dumpRef
	closed   bool
}

// NewFlightRecorder builds a recorder writing into cfg.Dir, creating the
// directory if needed.
func NewFlightRecorder(cfg FlightRecorderConfig) (*FlightRecorder, error) {
	c := cfg.withDefaults()
	if c.Dir == "" {
		return nil, fmt.Errorf("obs: flight recorder needs a directory")
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: flight recorder dir: %w", err)
	}
	r := &FlightRecorder{cfg: c}
	if c.Registry != nil {
		r.dumpsC = c.Registry.Counter("h2_flightrec_dumps_total",
			"anomaly dumps the flight recorder wrote")
		r.suppressedC = c.Registry.Counter("h2_flightrec_suppressed_total",
			"anomaly triggers suppressed by the flight recorder's rate limit or dump cap")
	} else {
		r.dumpsC = metrics.NewCounter()
		r.suppressedC = metrics.NewCounter()
	}
	return r, nil
}

// Dumps returns how many dumps were written.
func (r *FlightRecorder) Dumps() int64 { return r.dumpsC.Value() }

// Suppressed returns how many triggers were suppressed by the rate limit
// or the dump cap.
func (r *FlightRecorder) Suppressed() int64 { return r.suppressedC.Value() }

// dumpHeader is the first line of one dump file.
type dumpHeader struct {
	Flightrec string    `json:"flightrec"`
	Reason    string    `json:"reason"`
	Target    string    `json:"target,omitempty"`
	Conn      uint64    `json:"conn,omitempty"`
	Phase     string    `json:"phase,omitempty"`
	At        time.Time `json:"at"`
	Events    int       `json:"events"`
	Truncated bool      `json:"truncated,omitempty"`
}

// dumpEvent is the wire form of one dumped event (times are absolute; the
// events already carry monotonic-consistent stamps from one process).
type dumpEvent struct {
	Seq    uint64    `json:"seq"`
	At     time.Time `json:"at"`
	Kind   string    `json:"kind"`
	Conn   uint64    `json:"conn,omitempty"`
	Phase  string    `json:"phase,omitempty"`
	Stream uint32    `json:"stream,omitempty"`
	FType  uint8     `json:"ft,omitempty"`
	Flags  uint8     `json:"flags,omitempty"`
	Len    int       `json:"len,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// safeFileFragment maps a trigger reason onto file-name-safe characters.
func safeFileFragment(s string) string {
	out := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
	if len(out) > 48 {
		out = out[:48]
	}
	if out == "" {
		out = "anomaly"
	}
	return out
}

// Dump writes one anomaly dump: a header line, one span-summary line per
// reconstructed connection, then the last Tail events, all JSONL. It
// returns the written file's path, or "" when the trigger was suppressed
// (rate limit, dump cap, or recorder already closed) — suppression is not
// an error. The error return reports I/O failures and must not be
// discarded: a dropped Dump error means the forensic evidence for an
// anomaly silently never hit the disk.
func (r *FlightRecorder) Dump(a Anomaly, events []trace.Event) (string, error) {
	now := r.cfg.Clock()
	if a.At.IsZero() {
		a.At = now
	}

	r.mu.Lock()
	if r.closed || r.seq >= r.cfg.MaxDumps ||
		(r.cfg.MinInterval > 0 && !r.lastDump.IsZero() && now.Sub(r.lastDump) < r.cfg.MinInterval) {
		r.mu.Unlock()
		r.suppressedC.Inc()
		return "", nil
	}
	r.seq++
	seq := r.seq
	r.lastDump = now
	r.mu.Unlock()

	// Span summary over the full provided stream; the event tail is bounded
	// separately so the summary stays complete even when events are cut.
	conns := BuildConns(events)
	tail := events
	truncated := false
	if len(tail) > r.cfg.Tail {
		tail = tail[len(tail)-r.cfg.Tail:]
		truncated = true
	}

	name := fmt.Sprintf("anomaly-%03d-%s.jsonl", seq, safeFileFragment(a.Reason))
	path := filepath.Join(r.cfg.Dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("obs: flight dump: %w", err)
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	werr := enc.Encode(dumpHeader{
		Flightrec: "h2scope-anomaly",
		Reason:    a.Reason,
		Target:    a.Target,
		Conn:      a.Conn,
		Phase:     a.Phase,
		At:        a.At,
		Events:    len(tail),
		Truncated: truncated,
	})
	for i := range conns {
		if werr != nil {
			break
		}
		werr = enc.Encode(struct {
			Span *ConnPhases `json:"span"`
		}{&conns[i]})
	}
	for _, ev := range tail {
		if werr != nil {
			break
		}
		werr = enc.Encode(struct {
			Event dumpEvent `json:"event"`
		}{dumpEvent{
			Seq:    ev.Seq,
			At:     ev.At,
			Kind:   ev.Kind.String(),
			Conn:   ev.Conn,
			Phase:  ev.Phase,
			Stream: ev.StreamID,
			FType:  uint8(ev.FrameType),
			Flags:  uint8(ev.Flags),
			Len:    ev.Length,
			Detail: ev.Detail,
		}})
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", fmt.Errorf("obs: flight dump %s: %w", name, werr)
	}

	r.dumpsC.Inc()
	r.mu.Lock()
	r.refs = append(r.refs, dumpRef{File: name, Reason: a.Reason, Target: a.Target, At: a.At, Events: len(tail)})
	r.mu.Unlock()
	return path, nil
}

// Close seals the recorder: further triggers are suppressed, and a
// manifest.json indexing every dump (plus the suppression count) is
// written so a post-mortem can enumerate the evidence without globbing.
// The error return must not be discarded — a dropped Close error hides a
// manifest that never made it to disk.
func (r *FlightRecorder) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	refs := make([]dumpRef, len(r.refs))
	copy(refs, r.refs)
	r.mu.Unlock()

	manifest := struct {
		Flightrec  string    `json:"flightrec"`
		WrittenAt  time.Time `json:"writtenAt"`
		Dumps      []dumpRef `json:"dumps"`
		Suppressed int64     `json:"suppressed"`
		Tail       int       `json:"tail"`
		MaxDumps   int       `json:"maxDumps"`
	}{"h2scope-manifest", r.cfg.Clock(), refs, r.Suppressed(), r.cfg.Tail, r.cfg.MaxDumps}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: flight manifest: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(filepath.Join(r.cfg.Dir, "manifest.json"), data, 0o644); err != nil {
		return fmt.Errorf("obs: flight manifest: %w", err)
	}
	return nil
}
