package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"h2scope/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenSpanReconstruction pins the full span derivation against a
// recorded trace fixture: any change to the builder's causal rules shows up
// as a golden diff, reviewed rather than silently absorbed.
func TestGoldenSpanReconstruction(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "span_fixture.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	RenderConns(&sb, d.Target, BuildConns(d.Events))
	got := sb.String()

	goldenPath := filepath.Join("testdata", "span_fixture.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("span reconstruction drifted from golden (run with -update to accept):\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
