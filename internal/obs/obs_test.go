package obs

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/trace"
)

var testBase = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// at returns testBase + ms milliseconds.
func at(ms int) time.Time { return testBase.Add(time.Duration(ms) * time.Millisecond) }

// clientEvents is a synthetic client-side probe trace with known phase
// durations: dial 5ms, tls 7ms (pre-conn region), preface 2ms, settle 6ms,
// stream 1 first-byte 8ms last-byte 18ms, close 5ms.
func clientEvents() []trace.Event {
	return []trace.Event{
		{Kind: trace.KindPhaseStart, Conn: 1, Phase: "dial", At: at(0)},
		{Kind: trace.KindPhaseEnd, Conn: 1, Phase: "dial", At: at(5)},
		// TLS handshake happens in the dialer before the connection has an
		// identity: conn 0, attributed to the next ConnOpen.
		{Kind: trace.KindPhaseStart, Conn: 0, Phase: "tls", At: at(5)},
		{Kind: trace.KindPhaseEnd, Conn: 0, Phase: "tls", At: at(12)},
		{Kind: trace.KindConnOpen, Conn: 1, Detail: "site-000001.example:443", At: at(12)},
		// A probe-phase marker (tracer-global, conn 0) must be ignored.
		{Kind: trace.KindPhaseStart, Conn: 0, Phase: "settings", At: at(13)},
		{Kind: trace.KindFrameSent, Conn: 1, FrameType: frame.TypeSettings, At: at(14)},
		{Kind: trace.KindFrameRecv, Conn: 1, FrameType: frame.TypeSettings, At: at(20)},
		// SETTINGS ACKs must not disturb the settle anchors.
		{Kind: trace.KindFrameSent, Conn: 1, FrameType: frame.TypeSettings, Flags: frame.FlagAck, At: at(21)},
		{Kind: trace.KindFrameSent, Conn: 1, StreamID: 1, FrameType: frame.TypeHeaders, At: at(22)},
		{Kind: trace.KindFrameRecv, Conn: 1, StreamID: 1, FrameType: frame.TypeHeaders, At: at(30)},
		{Kind: trace.KindFrameRecv, Conn: 1, StreamID: 1, FrameType: frame.TypeData, At: at(35)},
		{Kind: trace.KindFrameRecv, Conn: 1, StreamID: 1, FrameType: frame.TypeData, Flags: frame.FlagEndStream, At: at(40)},
		{Kind: trace.KindFrameSent, Conn: 1, FrameType: frame.TypeGoAway, At: at(45)},
		{Kind: trace.KindConnClose, Conn: 1, At: at(50)},
	}
}

func TestBuildConnsClientTrace(t *testing.T) {
	conns := BuildConns(clientEvents())
	if len(conns) != 1 {
		t.Fatalf("BuildConns: %d conns, want 1", len(conns))
	}
	c := conns[0]
	if c.Conn != 1 || !c.Opened || !c.Closed {
		t.Fatalf("lifecycle: conn=%d opened=%v closed=%v", c.Conn, c.Opened, c.Closed)
	}
	if c.Detail != "site-000001.example:443" {
		t.Errorf("Detail = %q", c.Detail)
	}
	want := map[string]time.Duration{
		PhaseDial:    5 * time.Millisecond,
		PhaseTLS:     7 * time.Millisecond,
		PhasePreface: 2 * time.Millisecond,
		PhaseSettle:  6 * time.Millisecond,
		PhaseClose:   5 * time.Millisecond,
	}
	for p, d := range want {
		if got := c.Phase(p); got != d {
			t.Errorf("phase %s = %v, want %v", p, got, d)
		}
	}
	if len(c.Streams) != 1 {
		t.Fatalf("streams: %d, want 1", len(c.Streams))
	}
	s := c.Streams[0]
	if s.StreamID != 1 || s.FirstByte != 8*time.Millisecond || s.LastByte != 18*time.Millisecond {
		t.Errorf("stream span = %+v", s)
	}
	if got := c.Duration(); got != 50*time.Millisecond {
		t.Errorf("Duration = %v, want 50ms", got)
	}
}

func TestBuildConnsServerTrace(t *testing.T) {
	// Server direction: the request HEADERS is received, the response is
	// sent. No dial/TLS regions; preface anchors at ConnOpen.
	events := []trace.Event{
		{Kind: trace.KindConnOpen, Conn: 7, Detail: "127.0.0.1:55555", At: at(0)},
		{Kind: trace.KindFrameRecv, Conn: 7, FrameType: frame.TypeSettings, At: at(1)},
		{Kind: trace.KindFrameSent, Conn: 7, FrameType: frame.TypeSettings, At: at(3)},
		{Kind: trace.KindFrameRecv, Conn: 7, StreamID: 1, FrameType: frame.TypeHeaders, At: at(5)},
		{Kind: trace.KindFrameSent, Conn: 7, StreamID: 1, FrameType: frame.TypeHeaders, At: at(9)},
		{Kind: trace.KindFrameSent, Conn: 7, StreamID: 1, FrameType: frame.TypeData, Flags: frame.FlagEndStream, At: at(11)},
		{Kind: trace.KindConnClose, Conn: 7, At: at(12)},
	}
	conns := BuildConns(events)
	if len(conns) != 1 {
		t.Fatalf("BuildConns: %d conns, want 1", len(conns))
	}
	c := conns[0]
	if c.Preface != 3*time.Millisecond {
		t.Errorf("preface = %v, want 3ms", c.Preface)
	}
	// The peer's SETTINGS arrived before ours went out: settle is not a
	// positive interval, so it stays unobserved.
	if c.Settle != 0 {
		t.Errorf("settle = %v, want 0", c.Settle)
	}
	if len(c.Streams) != 1 {
		t.Fatalf("streams: %d, want 1", len(c.Streams))
	}
	s := c.Streams[0]
	if s.FirstByte != 4*time.Millisecond || s.LastByte != 6*time.Millisecond {
		t.Errorf("stream span = %+v", s)
	}
	// No GOAWAY: close falls back to last frame → ConnClose.
	if c.Close != 1*time.Millisecond {
		t.Errorf("close = %v, want 1ms", c.Close)
	}
}

func TestBuilderStreamingMatchesBatch(t *testing.T) {
	events := clientEvents()
	// Second connection that never closes, to exercise Finish.
	events = append(events,
		trace.Event{Kind: trace.KindConnOpen, Conn: 2, At: at(60)},
		trace.Event{Kind: trace.KindFrameSent, Conn: 2, FrameType: frame.TypeSettings, At: at(61)},
	)
	batch := BuildConns(events)

	b := NewBuilder()
	var streamed []ConnPhases
	b.OnConn = func(c ConnPhases) { streamed = append(streamed, c) }
	for _, ev := range events {
		b.Feed(ev)
	}
	streamed = append(streamed, b.Finish()...)

	if !reflect.DeepEqual(batch, streamed) {
		t.Errorf("streaming != batch\nbatch:    %+v\nstreamed: %+v", batch, streamed)
	}
}

func TestBuilderSkipsStreamsWithoutRequestLandmark(t *testing.T) {
	// DATA on a stream whose HEADERS predates the ring window: no span.
	events := []trace.Event{
		{Kind: trace.KindConnOpen, Conn: 1, At: at(0)},
		{Kind: trace.KindFrameRecv, Conn: 1, StreamID: 5, FrameType: frame.TypeData, At: at(1)},
		{Kind: trace.KindConnClose, Conn: 1, At: at(2)},
	}
	conns := BuildConns(events)
	if len(conns) != 1 || len(conns[0].Streams) != 0 {
		t.Fatalf("got %+v, want one conn with no stream spans", conns)
	}
}

func TestBuilderReusableAfterFinish(t *testing.T) {
	b := NewBuilder()
	for _, ev := range clientEvents() {
		b.Feed(ev)
	}
	if got := len(b.Finish()); got != 1 {
		t.Fatalf("first Finish: %d conns", got)
	}
	if got := len(b.Finish()); got != 0 {
		t.Fatalf("second Finish: %d conns, want 0", got)
	}
	for _, ev := range clientEvents() {
		b.Feed(ev)
	}
	if got := len(b.Finish()); got != 1 {
		t.Fatalf("reuse Finish: %d conns", got)
	}
}

func TestRenderConns(t *testing.T) {
	var sb strings.Builder
	RenderConns(&sb, "site-000001.example", BuildConns(clientEvents()))
	out := sb.String()
	for _, want := range []string{
		"causal spans for site-000001.example: 1 connection(s)",
		"conn 1  open=yes close=yes",
		"dial=5.0ms tls=7.0ms preface=2.0ms settle=6.0ms close=5.0ms",
		"stream 1: first-byte=8.0ms last-byte=18.0ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}
