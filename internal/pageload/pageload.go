// Package pageload measures page-load time (PLT) with server push enabled
// and disabled — the paper's Fig. 3 experiment, where 15 push-capable sites
// are visited 30 times each with Firefox's push support toggled.
//
// The load model is the browser fetch schedule that matters for push: the
// client fetches the page, then fetches every subresource in parallel.
// Without push the subresources cost an extra request round trip after the
// page arrives; with push the server starts sending them alongside the
// page, saving that round trip (exactly the mechanism Section VII's related
// work attributes the gains to).
package pageload

import (
	"fmt"
	"net"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
)

// Config describes one page-load scenario.
type Config struct {
	// Authority is the site's domain.
	Authority string
	// Page is the entry document, usually "/".
	Page string
	// Resources are the subresources the page references.
	Resources []string
	// EnablePush toggles SETTINGS_ENABLE_PUSH.
	EnablePush bool
	// Timeout bounds the whole load.
	Timeout time.Duration
}

// Load performs one page load over nc and returns the PLT: the time from
// connection establishment until the page and all subresources completed.
func Load(nc net.Conn, cfg Config) (time.Duration, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 15 * time.Second
	}
	start := time.Now()
	opts := h2conn.DefaultOptions()
	pushVal := uint32(0)
	if cfg.EnablePush {
		pushVal = 1
	}
	// Browsers advertise large windows at connection setup so transfers
	// are not gated on WINDOW_UPDATE round trips; do the same, otherwise
	// flow-control stalls dominate PLT in both configurations.
	opts.Settings = []frame.Setting{
		{ID: frame.SettingEnablePush, Val: pushVal},
		{ID: frame.SettingInitialWindowSize, Val: 8 << 20},
	}
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		return 0, err
	}
	defer func() {
		_ = c.Close()
	}()
	if err := c.WriteWindowUpdate(0, 64<<20); err != nil {
		return 0, err
	}

	// Fetch the page.
	pageResp, err := c.FetchBody(h2conn.Request{Authority: cfg.Authority, Path: cfg.Page}, cfg.Timeout)
	if err != nil {
		return 0, fmt.Errorf("pageload: page fetch: %w", err)
	}
	if pageResp.Status() != "200" {
		return 0, fmt.Errorf("pageload: page status %s", pageResp.Status())
	}

	// Once the page arrived the browser knows the subresources. Resources
	// already promised by the server need no request; the rest are fetched
	// in parallel.
	promised := promisedPaths(c)
	var openIDs []uint32
	for _, res := range cfg.Resources {
		if promised[res] {
			continue
		}
		id, err := c.OpenStream(h2conn.Request{Authority: cfg.Authority, Path: res})
		if err != nil {
			return 0, err
		}
		openIDs = append(openIDs, id)
	}

	// Wait for every requested stream and every promised push stream to
	// complete.
	_, err = c.WaitFor(cfg.Timeout, func(evs []h2conn.Event) bool {
		done := make(map[uint32]bool)
		promisedIDs := make([]uint32, 0, 4)
		for _, e := range evs {
			if e.Type == frame.TypePushPromise {
				promisedIDs = append(promisedIDs, e.PromiseID)
			}
			if e.StreamEnded() || e.Type == frame.TypeRSTStream {
				done[e.StreamID] = true
			}
		}
		for _, id := range openIDs {
			if !done[id] {
				return false
			}
		}
		for _, id := range promisedIDs {
			if !done[id] {
				return false
			}
		}
		return true
	})
	if err != nil {
		return 0, fmt.Errorf("pageload: waiting for resources: %w", err)
	}
	return time.Since(start), nil
}

func promisedPaths(c *h2conn.Conn) map[string]bool {
	out := make(map[string]bool)
	for _, e := range c.Events() {
		if e.Type != frame.TypePushPromise {
			continue
		}
		for _, hf := range e.Headers {
			if hf.Name == ":path" {
				out[hf.Value] = true
			}
		}
	}
	return out
}

// Dialer opens a fresh transport connection per visit.
type Dialer func() (net.Conn, error)

// Series holds the PLT samples of one site under both configurations —
// one group of Fig. 3's paired bars.
type Series struct {
	Domain  string
	PushOn  []time.Duration
	PushOff []time.Duration
}

// MeanOn returns the mean PLT with push enabled.
func (s *Series) MeanOn() time.Duration { return mean(s.PushOn) }

// MeanOff returns the mean PLT with push disabled.
func (s *Series) MeanOff() time.Duration { return mean(s.PushOff) }

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Measure visits the site `visits` times in each configuration, as the
// paper does with Firefox (30 visits per site).
func Measure(dial Dialer, domain, page string, resources []string, visits int, timeout time.Duration) (*Series, error) {
	s := &Series{Domain: domain}
	for _, push := range []bool{true, false} {
		for v := 0; v < visits; v++ {
			nc, err := dial()
			if err != nil {
				return nil, fmt.Errorf("pageload: dial visit %d: %w", v, err)
			}
			plt, err := Load(nc, Config{
				Authority:  domain,
				Page:       page,
				Resources:  resources,
				EnablePush: push,
				Timeout:    timeout,
			})
			_ = nc.Close()
			if err != nil {
				return nil, fmt.Errorf("pageload: visit %d (push=%v): %w", v, push, err)
			}
			if push {
				s.PushOn = append(s.PushOn, plt)
			} else {
				s.PushOff = append(s.PushOff, plt)
			}
		}
	}
	return s, nil
}

// Stats reports one load's transfer accounting, used for the paper's
// Discussion-section concern that pushing objects the client already
// caches wastes bandwidth.
type Stats struct {
	// PLT is the page-load time.
	PLT time.Duration
	// BodyBytes is the total DATA payload received.
	BodyBytes int
	// PushedBytes is the DATA payload received on server-initiated streams.
	PushedBytes int
	// WastedPushBytes is pushed payload for resources the client had
	// cached and would never have requested.
	WastedPushBytes int
}

// LoadWithStats performs one page load like Load but also accounts for
// transfer volume. cfg.Cached lists subresources the client already holds:
// it will not request them, but a pushing server still transmits them —
// the waste the paper's Discussion section warns about.
func LoadWithStats(nc net.Conn, cfg Config, cached []string) (*Stats, error) {
	if cfg.Timeout == 0 {
		cfg.Timeout = 15 * time.Second
	}
	isCached := make(map[string]bool, len(cached))
	for _, p := range cached {
		isCached[p] = true
	}
	start := time.Now()
	opts := h2conn.DefaultOptions()
	pushVal := uint32(0)
	if cfg.EnablePush {
		pushVal = 1
	}
	opts.Settings = []frame.Setting{
		{ID: frame.SettingEnablePush, Val: pushVal},
		{ID: frame.SettingInitialWindowSize, Val: 8 << 20},
	}
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		return nil, err
	}
	defer func() {
		_ = c.Close()
	}()
	if err := c.WriteWindowUpdate(0, 64<<20); err != nil {
		return nil, err
	}
	pageResp, err := c.FetchBody(h2conn.Request{Authority: cfg.Authority, Path: cfg.Page}, cfg.Timeout)
	if err != nil {
		return nil, fmt.Errorf("pageload: page fetch: %w", err)
	}
	if pageResp.Status() != "200" {
		return nil, fmt.Errorf("pageload: page status %s", pageResp.Status())
	}

	promised := promisedPaths(c)
	var openIDs []uint32
	for _, res := range cfg.Resources {
		if promised[res] || isCached[res] {
			continue
		}
		id, err := c.OpenStream(h2conn.Request{Authority: cfg.Authority, Path: res})
		if err != nil {
			return nil, err
		}
		openIDs = append(openIDs, id)
	}
	events, err := c.WaitFor(cfg.Timeout, func(evs []h2conn.Event) bool {
		done := make(map[uint32]bool)
		var promisedIDs []uint32
		for _, e := range evs {
			if e.Type == frame.TypePushPromise {
				promisedIDs = append(promisedIDs, e.PromiseID)
			}
			if e.StreamEnded() || e.Type == frame.TypeRSTStream {
				done[e.StreamID] = true
			}
		}
		for _, id := range append(openIDs, promisedIDs...) {
			if !done[id] {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("pageload: waiting for resources: %w", err)
	}

	stats := &Stats{PLT: time.Since(start)}
	pushPath := make(map[uint32]string)
	for _, e := range events {
		if e.Type == frame.TypePushPromise {
			for _, hf := range e.Headers {
				if hf.Name == ":path" {
					pushPath[e.PromiseID] = hf.Value
				}
			}
		}
	}
	for _, e := range events {
		if e.Type != frame.TypeData {
			continue
		}
		stats.BodyBytes += len(e.Data)
		if path, pushed := pushPath[e.StreamID]; pushed {
			stats.PushedBytes += len(e.Data)
			if isCached[path] {
				stats.WastedPushBytes += len(e.Data)
			}
		}
	}
	return stats, nil
}
