package pageload_test

import (
	"net"
	"testing"
	"time"

	"h2scope/internal/netsim"
	"h2scope/internal/pageload"
	"h2scope/internal/server"
)

func startPushSite(t *testing.T, profile server.Profile) *netsim.Listener {
	t.Helper()
	site := server.DefaultSite("push.example")
	site.SetPush("/", "/static/style.css", "/static/app.js", "/static/logo.png", "/static/hero.jpg")
	srv := server.New(profile, site)
	l := netsim.NewListener("pageload")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	return l
}

var pageResources = []string{
	"/static/style.css", "/static/app.js", "/static/logo.png", "/static/hero.jpg",
}

func TestPushReducesPLTOverLatencyPath(t *testing.T) {
	// Fig. 3: with a push-capable server and a non-trivial RTT, enabling
	// push lowers page-load time (it saves the subresource request round
	// trip).
	l := startPushSite(t, server.H2OProfile())
	const owd = 15 * time.Millisecond
	dial := func() (net.Conn, error) { return l.DialLatency(owd, owd) }

	series, err := pageload.Measure(dial, "push.example", "/", pageResources, 3, 10*time.Second)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	on, off := series.MeanOn(), series.MeanOff()
	if on <= 0 || off <= 0 {
		t.Fatalf("means = %v/%v, want positive", on, off)
	}
	if on >= off {
		t.Errorf("push-on PLT %v >= push-off PLT %v, want lower with push", on, off)
	}
	// The saving should be roughly one round trip.
	if off-on < owd {
		t.Errorf("push saving %v < one-way delay %v", off-on, owd)
	}
}

func TestPushOffEqualsNonPushServer(t *testing.T) {
	// A server without push support yields the same schedule as push-off.
	l := startPushSite(t, server.NginxProfile())
	dial := func() (net.Conn, error) { return l.Dial() }
	series, err := pageload.Measure(dial, "push.example", "/", pageResources, 2, 10*time.Second)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if len(series.PushOn) != 2 || len(series.PushOff) != 2 {
		t.Fatalf("sample counts = %d/%d, want 2/2", len(series.PushOn), len(series.PushOff))
	}
}

func TestLoadFailsOnMissingPage(t *testing.T) {
	l := startPushSite(t, server.H2OProfile())
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	if _, err := pageload.Load(nc, pageload.Config{
		Authority: "push.example",
		Page:      "/missing",
		Timeout:   5 * time.Second,
	}); err == nil {
		t.Fatal("Load of missing page succeeded, want 404 error")
	}
}

func TestWarmCachePushWastesBandwidth(t *testing.T) {
	// The Discussion section's concern: if the client already caches the
	// pushed objects, a pushing server transmits them anyway, while a
	// non-pushing schedule transfers nothing extra.
	l := startPushSite(t, server.H2OProfile())
	cached := pageResources // everything cached

	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	withPush, err := pageload.LoadWithStats(nc, pageload.Config{
		Authority: "push.example", Page: "/", Resources: pageResources,
		EnablePush: true, Timeout: 10 * time.Second,
	}, cached)
	if err != nil {
		t.Fatalf("LoadWithStats(push on): %v", err)
	}
	nc2, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	withoutPush, err := pageload.LoadWithStats(nc2, pageload.Config{
		Authority: "push.example", Page: "/", Resources: pageResources,
		EnablePush: false, Timeout: 10 * time.Second,
	}, cached)
	if err != nil {
		t.Fatalf("LoadWithStats(push off): %v", err)
	}

	if withPush.WastedPushBytes == 0 {
		t.Error("no wasted push bytes despite a fully warm cache")
	}
	// Pushed waste is the four subresources (~96 KiB).
	if withPush.WastedPushBytes < 90*1024 {
		t.Errorf("WastedPushBytes = %d, want ~96 KiB", withPush.WastedPushBytes)
	}
	if withoutPush.PushedBytes != 0 || withoutPush.WastedPushBytes != 0 {
		t.Errorf("push-off transferred pushed bytes: %+v", withoutPush)
	}
	if withoutPush.BodyBytes >= withPush.BodyBytes {
		t.Errorf("push-off moved %d bytes >= push-on %d despite warm cache",
			withoutPush.BodyBytes, withPush.BodyBytes)
	}
}

func TestLoadWithStatsColdCacheMatchesLoad(t *testing.T) {
	l := startPushSite(t, server.H2OProfile())
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := pageload.LoadWithStats(nc, pageload.Config{
		Authority: "push.example", Page: "/", Resources: pageResources,
		EnablePush: true, Timeout: 10 * time.Second,
	}, nil)
	if err != nil {
		t.Fatalf("LoadWithStats: %v", err)
	}
	if stats.WastedPushBytes != 0 {
		t.Errorf("cold cache wasted %d bytes", stats.WastedPushBytes)
	}
	if stats.PushedBytes == 0 {
		t.Error("no pushed bytes on a pushing server")
	}
	// Page + all four subresources arrived.
	if stats.BodyBytes < 96*1024 {
		t.Errorf("BodyBytes = %d, want > 96 KiB", stats.BodyBytes)
	}
}
