// Package frame implements HTTP/2 binary framing as specified by
// RFC 7540 sections 4 and 6.
//
// It provides typed representations of all ten frame types, a Framer for
// reading and writing frames on a net.Conn (or any io.ReadWriter), and the
// RFC 7540 error-code vocabulary. The package deliberately exposes enough
// rope to send frames a well-behaved client never would — zero-increment
// WINDOW_UPDATEs, self-dependent PRIORITY frames, oversized windows —
// because the H2Scope probing methodology requires injecting exactly those
// frames and observing how a server reacts.
package frame

import (
	"encoding/binary"
	"fmt"
)

// HeaderLen is the fixed size in bytes of an HTTP/2 frame header (RFC 7540
// section 4.1).
const HeaderLen = 9

// ClientPreface is the connection preface every client must send first
// (RFC 7540 section 3.5).
const ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

// Default protocol constants from RFC 7540 section 6.5.2 and 6.9.2.
const (
	// DefaultMaxFrameSize is the initial SETTINGS_MAX_FRAME_SIZE value.
	DefaultMaxFrameSize = 1 << 14 // 16,384
	// MaxAllowedFrameSize is the largest value SETTINGS_MAX_FRAME_SIZE may take.
	MaxAllowedFrameSize = 1<<24 - 1 // 16,777,215
	// DefaultInitialWindowSize is the initial flow-control window for both
	// streams and the connection.
	DefaultInitialWindowSize = 1<<16 - 1 // 65,535
	// MaxWindowSize is the largest legal flow-control window (2^31-1).
	MaxWindowSize = 1<<31 - 1
	// DefaultHeaderTableSize is the initial HPACK dynamic-table size.
	DefaultHeaderTableSize = 4096
	// MaxStreamID is the largest legal stream identifier (31 bits).
	MaxStreamID = 1<<31 - 1
)

// Type identifies an HTTP/2 frame type (RFC 7540 section 6).
type Type uint8

// The ten frame types defined by RFC 7540.
const (
	TypeData         Type = 0x0
	TypeHeaders      Type = 0x1
	TypePriority     Type = 0x2
	TypeRSTStream    Type = 0x3
	TypeSettings     Type = 0x4
	TypePushPromise  Type = 0x5
	TypePing         Type = 0x6
	TypeGoAway       Type = 0x7
	TypeWindowUpdate Type = 0x8
	TypeContinuation Type = 0x9
)

var typeNames = map[Type]string{
	TypeData:         "DATA",
	TypeHeaders:      "HEADERS",
	TypePriority:     "PRIORITY",
	TypeRSTStream:    "RST_STREAM",
	TypeSettings:     "SETTINGS",
	TypePushPromise:  "PUSH_PROMISE",
	TypePing:         "PING",
	TypeGoAway:       "GOAWAY",
	TypeWindowUpdate: "WINDOW_UPDATE",
	TypeContinuation: "CONTINUATION",
}

// String returns the RFC 7540 name of the frame type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("UNKNOWN_FRAME_TYPE_%d", uint8(t))
}

// Flags holds the 8-bit flags field of a frame header. Flag meaning is
// frame-type specific.
type Flags uint8

// Has reports whether every bit of f2 is set in f.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// Frame flags defined by RFC 7540.
const (
	// FlagEndStream marks the last DATA or HEADERS frame of a stream.
	FlagEndStream Flags = 0x1
	// FlagAck acknowledges a SETTINGS or PING frame.
	FlagAck Flags = 0x1
	// FlagEndHeaders marks the end of a header block.
	FlagEndHeaders Flags = 0x4
	// FlagPadded indicates the frame carries padding.
	FlagPadded Flags = 0x8
	// FlagPriority indicates a HEADERS frame carries priority information.
	FlagPriority Flags = 0x20
)

// ErrCode is an HTTP/2 error code carried by RST_STREAM and GOAWAY frames
// (RFC 7540 section 7).
type ErrCode uint32

// Error codes defined by RFC 7540 section 7.
const (
	ErrCodeNo                 ErrCode = 0x0
	ErrCodeProtocol           ErrCode = 0x1
	ErrCodeInternal           ErrCode = 0x2
	ErrCodeFlowControl        ErrCode = 0x3
	ErrCodeSettingsTimeout    ErrCode = 0x4
	ErrCodeStreamClosed       ErrCode = 0x5
	ErrCodeFrameSize          ErrCode = 0x6
	ErrCodeRefusedStream      ErrCode = 0x7
	ErrCodeCancel             ErrCode = 0x8
	ErrCodeCompression        ErrCode = 0x9
	ErrCodeConnect            ErrCode = 0xa
	ErrCodeEnhanceYourCalm    ErrCode = 0xb
	ErrCodeInadequateSecurity ErrCode = 0xc
	ErrCodeHTTP11Required     ErrCode = 0xd
)

var errCodeNames = map[ErrCode]string{
	ErrCodeNo:                 "NO_ERROR",
	ErrCodeProtocol:           "PROTOCOL_ERROR",
	ErrCodeInternal:           "INTERNAL_ERROR",
	ErrCodeFlowControl:        "FLOW_CONTROL_ERROR",
	ErrCodeSettingsTimeout:    "SETTINGS_TIMEOUT",
	ErrCodeStreamClosed:       "STREAM_CLOSED",
	ErrCodeFrameSize:          "FRAME_SIZE_ERROR",
	ErrCodeRefusedStream:      "REFUSED_STREAM",
	ErrCodeCancel:             "CANCEL",
	ErrCodeCompression:        "COMPRESSION_ERROR",
	ErrCodeConnect:            "CONNECT_ERROR",
	ErrCodeEnhanceYourCalm:    "ENHANCE_YOUR_CALM",
	ErrCodeInadequateSecurity: "INADEQUATE_SECURITY",
	ErrCodeHTTP11Required:     "HTTP_1_1_REQUIRED",
}

// String returns the RFC 7540 name of the error code.
func (e ErrCode) String() string {
	if s, ok := errCodeNames[e]; ok {
		return s
	}
	return fmt.Sprintf("unknown error code 0x%x", uint32(e))
}

// ConnError is a connection-level protocol error. A peer detecting one must
// send GOAWAY and tear down the connection (RFC 7540 section 5.4.1).
type ConnError struct {
	Code   ErrCode
	Reason string
}

// Error implements the error interface.
func (e ConnError) Error() string {
	return fmt.Sprintf("connection error (%v): %s", e.Code, e.Reason)
}

// StreamError is a stream-level protocol error. A peer detecting one must
// send RST_STREAM for the affected stream (RFC 7540 section 5.4.2).
type StreamError struct {
	StreamID uint32
	Code     ErrCode
	Reason   string
}

// Error implements the error interface.
func (e StreamError) Error() string {
	return fmt.Sprintf("stream error on stream %d (%v): %s", e.StreamID, e.Code, e.Reason)
}

// Header is the 9-byte header that prefixes every HTTP/2 frame.
type Header struct {
	// Length is the 24-bit payload length, excluding the header itself.
	Length uint32
	// Type is the frame type.
	Type Type
	// Flags holds type-specific boolean flags.
	Flags Flags
	// StreamID is the 31-bit stream identifier; 0 addresses the connection.
	StreamID uint32
}

// String renders the header for logs and probe transcripts.
func (h Header) String() string {
	return fmt.Sprintf("[%v flags=0x%x stream=%d len=%d]", h.Type, uint8(h.Flags), h.StreamID, h.Length)
}

func (h Header) encodeTo(buf []byte) {
	buf[0] = byte(h.Length >> 16)
	buf[1] = byte(h.Length >> 8)
	buf[2] = byte(h.Length)
	buf[3] = byte(h.Type)
	buf[4] = byte(h.Flags)
	binary.BigEndian.PutUint32(buf[5:9], h.StreamID&MaxStreamID)
}

func parseHeader(buf []byte) Header {
	return Header{
		Length:   uint32(buf[0])<<16 | uint32(buf[1])<<8 | uint32(buf[2]),
		Type:     Type(buf[3]),
		Flags:    Flags(buf[4]),
		StreamID: binary.BigEndian.Uint32(buf[5:9]) & MaxStreamID,
	}
}

// Frame is the interface implemented by all typed frames.
type Frame interface {
	// Header returns the frame header as read from or written to the wire.
	Header() Header
}

// PriorityParam carries the stream prioritization fields of HEADERS and
// PRIORITY frames (RFC 7540 section 5.3).
type PriorityParam struct {
	// StreamDep is the stream this stream depends on; 0 means the root.
	StreamDep uint32
	// Exclusive requests exclusive dependency on StreamDep.
	Exclusive bool
	// Weight is the dependency weight minus one (wire value 0-255 encodes
	// weights 1-256). This struct stores the wire value.
	Weight uint8
}

// IsZero reports whether the parameter carries no prioritization signal.
func (p PriorityParam) IsZero() bool { return p == PriorityParam{} }

// DataFrame is a DATA frame (RFC 7540 section 6.1).
type DataFrame struct {
	hdr Header
	// Data is the flow-controlled payload, excluding any padding.
	Data []byte
	// PadLength is the number of padding octets carried by the frame.
	PadLength int
}

// Header returns the frame header.
func (f *DataFrame) Header() Header { return f.hdr }

// StreamEnded reports whether END_STREAM is set.
func (f *DataFrame) StreamEnded() bool { return f.hdr.Flags.Has(FlagEndStream) }

// FlowControlLen returns the number of octets the frame consumes from
// flow-control windows: data plus padding plus the pad-length octet.
func (f *DataFrame) FlowControlLen() int {
	n := len(f.Data)
	if f.hdr.Flags.Has(FlagPadded) {
		n += f.PadLength + 1
	}
	return n
}

// HeadersFrame is a HEADERS frame (RFC 7540 section 6.2). The framer does
// not decode the header block; Fragment carries the raw HPACK bytes.
type HeadersFrame struct {
	hdr Header
	// Priority holds prioritization fields when FlagPriority is set.
	Priority PriorityParam
	// Fragment is the (possibly partial) HPACK-encoded header block.
	Fragment []byte
	// PadLength is the number of padding octets carried by the frame.
	PadLength int
}

// Header returns the frame header.
func (f *HeadersFrame) Header() Header { return f.hdr }

// StreamEnded reports whether END_STREAM is set.
func (f *HeadersFrame) StreamEnded() bool { return f.hdr.Flags.Has(FlagEndStream) }

// HeadersEnded reports whether END_HEADERS is set.
func (f *HeadersFrame) HeadersEnded() bool { return f.hdr.Flags.Has(FlagEndHeaders) }

// HasPriority reports whether the frame carries prioritization fields.
func (f *HeadersFrame) HasPriority() bool { return f.hdr.Flags.Has(FlagPriority) }

// PriorityFrame is a PRIORITY frame (RFC 7540 section 6.3).
type PriorityFrame struct {
	hdr Header
	// Priority holds the new prioritization for the stream.
	Priority PriorityParam
}

// Header returns the frame header.
func (f *PriorityFrame) Header() Header { return f.hdr }

// RSTStreamFrame is an RST_STREAM frame (RFC 7540 section 6.4).
type RSTStreamFrame struct {
	hdr Header
	// Code is the error code explaining the reset.
	Code ErrCode
}

// Header returns the frame header.
func (f *RSTStreamFrame) Header() Header { return f.hdr }

// Setting is one identifier/value pair of a SETTINGS frame.
type Setting struct {
	ID  SettingID
	Val uint32
}

// String renders the setting for logs.
func (s Setting) String() string { return fmt.Sprintf("%v=%d", s.ID, s.Val) }

// SettingID identifies a SETTINGS parameter (RFC 7540 section 6.5.2).
type SettingID uint16

// SETTINGS parameters defined by RFC 7540.
const (
	SettingHeaderTableSize      SettingID = 0x1
	SettingEnablePush           SettingID = 0x2
	SettingMaxConcurrentStreams SettingID = 0x3
	SettingInitialWindowSize    SettingID = 0x4
	SettingMaxFrameSize         SettingID = 0x5
	SettingMaxHeaderListSize    SettingID = 0x6
)

var settingNames = map[SettingID]string{
	SettingHeaderTableSize:      "SETTINGS_HEADER_TABLE_SIZE",
	SettingEnablePush:           "SETTINGS_ENABLE_PUSH",
	SettingMaxConcurrentStreams: "SETTINGS_MAX_CONCURRENT_STREAMS",
	SettingInitialWindowSize:    "SETTINGS_INITIAL_WINDOW_SIZE",
	SettingMaxFrameSize:         "SETTINGS_MAX_FRAME_SIZE",
	SettingMaxHeaderListSize:    "SETTINGS_MAX_HEADER_LIST_SIZE",
}

// String returns the RFC 7540 name of the setting.
func (s SettingID) String() string {
	if n, ok := settingNames[s]; ok {
		return n
	}
	return fmt.Sprintf("SETTINGS_UNKNOWN_%d", uint16(s))
}

// Valid checks the setting value against RFC 7540 section 6.5.2 and returns
// a connection error for out-of-range values.
func (s Setting) Valid() error {
	switch s.ID {
	case SettingEnablePush:
		if s.Val != 0 && s.Val != 1 {
			return ConnError{ErrCodeProtocol, "SETTINGS_ENABLE_PUSH must be 0 or 1"}
		}
	case SettingInitialWindowSize:
		if s.Val > MaxWindowSize {
			return ConnError{ErrCodeFlowControl, "SETTINGS_INITIAL_WINDOW_SIZE above 2^31-1"}
		}
	case SettingMaxFrameSize:
		if s.Val < DefaultMaxFrameSize || s.Val > MaxAllowedFrameSize {
			return ConnError{ErrCodeProtocol, "SETTINGS_MAX_FRAME_SIZE out of range"}
		}
	}
	return nil
}

// SettingsFrame is a SETTINGS frame (RFC 7540 section 6.5).
type SettingsFrame struct {
	hdr Header
	// Settings lists the identifier/value pairs in wire order.
	Settings []Setting
}

// Header returns the frame header.
func (f *SettingsFrame) Header() Header { return f.hdr }

// IsAck reports whether the frame acknowledges a previous SETTINGS frame.
func (f *SettingsFrame) IsAck() bool { return f.hdr.Flags.Has(FlagAck) }

// Value returns the last value present for id, if any. RFC 7540 section
// 6.5.3 makes later occurrences win.
func (f *SettingsFrame) Value(id SettingID) (uint32, bool) {
	var (
		val   uint32
		found bool
	)
	for _, s := range f.Settings {
		if s.ID == id {
			val, found = s.Val, true
		}
	}
	return val, found
}

// PushPromiseFrame is a PUSH_PROMISE frame (RFC 7540 section 6.6).
type PushPromiseFrame struct {
	hdr Header
	// PromiseID is the stream the server reserves for the pushed response.
	PromiseID uint32
	// Fragment is the HPACK-encoded synthetic request header block.
	Fragment []byte
	// PadLength is the number of padding octets carried by the frame.
	PadLength int
}

// Header returns the frame header.
func (f *PushPromiseFrame) Header() Header { return f.hdr }

// HeadersEnded reports whether END_HEADERS is set.
func (f *PushPromiseFrame) HeadersEnded() bool { return f.hdr.Flags.Has(FlagEndHeaders) }

// PingFrame is a PING frame (RFC 7540 section 6.7).
type PingFrame struct {
	hdr Header
	// Data is the fixed 8-byte opaque payload.
	Data [8]byte
}

// Header returns the frame header.
func (f *PingFrame) Header() Header { return f.hdr }

// IsAck reports whether the frame is a PING response.
func (f *PingFrame) IsAck() bool { return f.hdr.Flags.Has(FlagAck) }

// GoAwayFrame is a GOAWAY frame (RFC 7540 section 6.8).
type GoAwayFrame struct {
	hdr Header
	// LastStreamID is the highest stream the sender may have acted on.
	LastStreamID uint32
	// Code is the error code explaining the shutdown.
	Code ErrCode
	// DebugData is optional additional diagnostic data.
	DebugData []byte
}

// Header returns the frame header.
func (f *GoAwayFrame) Header() Header { return f.hdr }

// WindowUpdateFrame is a WINDOW_UPDATE frame (RFC 7540 section 6.9).
type WindowUpdateFrame struct {
	hdr Header
	// Increment is the 31-bit window-size increment. A compliant sender
	// never sends 0, but H2Scope does so deliberately.
	Increment uint32
}

// Header returns the frame header.
func (f *WindowUpdateFrame) Header() Header { return f.hdr }

// ContinuationFrame is a CONTINUATION frame (RFC 7540 section 6.10).
type ContinuationFrame struct {
	hdr Header
	// Fragment continues a header block started by HEADERS or PUSH_PROMISE.
	Fragment []byte
}

// Header returns the frame header.
func (f *ContinuationFrame) Header() Header { return f.hdr }

// HeadersEnded reports whether END_HEADERS is set.
func (f *ContinuationFrame) HeadersEnded() bool { return f.hdr.Flags.Has(FlagEndHeaders) }

// UnknownFrame carries a frame of a type this package does not know.
// RFC 7540 section 4.1 requires implementations to ignore such frames.
type UnknownFrame struct {
	hdr Header
	// Payload is the raw frame payload.
	Payload []byte
}

// Header returns the frame header.
func (f *UnknownFrame) Header() Header { return f.hdr }

// Interface compliance checks.
var (
	_ Frame = (*DataFrame)(nil)
	_ Frame = (*HeadersFrame)(nil)
	_ Frame = (*PriorityFrame)(nil)
	_ Frame = (*RSTStreamFrame)(nil)
	_ Frame = (*SettingsFrame)(nil)
	_ Frame = (*PushPromiseFrame)(nil)
	_ Frame = (*PingFrame)(nil)
	_ Frame = (*GoAwayFrame)(nil)
	_ Frame = (*WindowUpdateFrame)(nil)
	_ Frame = (*ContinuationFrame)(nil)
	_ Frame = (*UnknownFrame)(nil)
	_ error = ConnError{}
	_ error = StreamError{}
)
