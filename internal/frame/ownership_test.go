package frame

import (
	"bytes"
	"testing"
)

// TestReadFrameRecyclesBuffers pins the ownership contract: the payload a
// ReadFrame returns lives in the framer's recycled buffer, so the next
// ReadFrame overwrites it in place. The contract is what makes the zero-
// alloc read path possible, and violating callers are exactly what
// CopyPayload exists for.
func TestReadFrameRecyclesBuffers(t *testing.T) {
	var buf bytes.Buffer
	w := NewFramer(&buf, nil)
	if err := w.WriteData(1, false, []byte("first payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteData(3, true, []byte("SECOND")); err != nil {
		t.Fatal(err)
	}

	r := NewFramer(nil, &buf)
	f1, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	d1 := f1.(*DataFrame)
	aliased := d1.Data // intentionally retained past the next ReadFrame
	if string(aliased) != "first payload" {
		t.Fatalf("first payload = %q", aliased)
	}

	f2, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	d2 := f2.(*DataFrame)
	if d1 != d2 {
		t.Fatalf("typed frame structs not recycled: got distinct *DataFrame per read")
	}
	if string(d2.Data) != "SECOND" {
		t.Fatalf("second payload = %q", d2.Data)
	}
	// The retained alias must now observe the recycled buffer's new
	// contents — if this ever starts failing because the framer began
	// copying, the zero-alloc contract (and CopyPayload's reason to exist)
	// changed and the docs must change with it.
	if string(aliased[:6]) == "first " {
		t.Fatalf("retained payload alias still reads old bytes %q; read buffer no longer recycled", aliased)
	}
}

// TestCopyPayloadDetaches proves CopyPayload survives both buffer recycling
// and explicit mutation of the recycled buffer.
func TestCopyPayloadDetaches(t *testing.T) {
	var buf bytes.Buffer
	w := NewFramer(&buf, nil)
	if err := w.WriteData(1, false, []byte("keep me intact")); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSettings(Setting{ID: SettingMaxFrameSize, Val: 1 << 14}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteGoAway(7, ErrCodeNo, []byte("bye")); err != nil {
		t.Fatal(err)
	}

	r := NewFramer(nil, &buf)
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	kept := CopyPayload(f).(*DataFrame)
	recycled := f.(*DataFrame)

	// Mutate the recycled buffer directly, then advance two frames so every
	// recycled slice is overwritten too.
	for i := range recycled.Data {
		recycled.Data[i] = 'X'
	}
	sf, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	keptSettings := CopyPayload(sf).(*SettingsFrame)
	ga, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	keptGoAway := CopyPayload(ga).(*GoAwayFrame)

	if string(kept.Data) != "keep me intact" {
		t.Errorf("CopyPayload DATA = %q, want %q", kept.Data, "keep me intact")
	}
	if kept.Header().StreamID != 1 {
		t.Errorf("CopyPayload header stream = %d, want 1", kept.Header().StreamID)
	}
	if len(keptSettings.Settings) != 1 || keptSettings.Settings[0].ID != SettingMaxFrameSize {
		t.Errorf("CopyPayload SETTINGS = %+v", keptSettings.Settings)
	}
	if string(keptGoAway.DebugData) != "bye" || keptGoAway.LastStreamID != 7 {
		t.Errorf("CopyPayload GOAWAY = last %d debug %q", keptGoAway.LastStreamID, keptGoAway.DebugData)
	}
}

// TestReadFrameResetsStaleFields proves a recycled frame struct carries no
// state from the previous frame of the same type: a padded DATA frame
// followed by an unpadded one must not leak PadLength, and a HEADERS frame
// with priority followed by one without must not leak the priority fields.
func TestReadFrameResetsStaleFields(t *testing.T) {
	var buf bytes.Buffer
	// Hand-encode a padded DATA frame (flags 0x8, pad length 3).
	payload := append([]byte{3}, []byte("datadata")...)
	payload = append(payload, 0, 0, 0)
	hdr := Header{Type: TypeData, Flags: FlagPadded, StreamID: 1, Length: uint32(len(payload))}
	writeRawHeader(&buf, hdr)
	buf.Write(payload)
	// Then an unpadded DATA frame.
	hdr2 := Header{Type: TypeData, StreamID: 1, Length: 4}
	writeRawHeader(&buf, hdr2)
	buf.WriteString("tail")

	r := NewFramer(nil, &buf)
	f1, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if d := f1.(*DataFrame); d.PadLength != 3 || string(d.Data) != "datadata" {
		t.Fatalf("padded frame: PadLength %d, data %q", d.PadLength, d.Data)
	}
	f2, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if d := f2.(*DataFrame); d.PadLength != 0 || string(d.Data) != "tail" {
		t.Fatalf("stale state leaked into recycled frame: PadLength %d, data %q", d.PadLength, d.Data)
	}
}

// writeRawHeader encodes a 9-octet frame header directly.
func writeRawHeader(buf *bytes.Buffer, h Header) {
	buf.Write([]byte{
		byte(h.Length >> 16), byte(h.Length >> 8), byte(h.Length),
		byte(h.Type), byte(h.Flags),
		byte(h.StreamID >> 24), byte(h.StreamID >> 16), byte(h.StreamID >> 8), byte(h.StreamID),
	})
}
