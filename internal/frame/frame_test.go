package frame

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

// pipeFramer returns a framer whose writes land in buf and whose reads
// consume buf, so a write followed by a read round-trips one frame.
func pipeFramer() (*Framer, *bytes.Buffer) {
	var buf bytes.Buffer
	return NewFramer(&buf, &buf), &buf
}

func readOne(t *testing.T, fr *Framer) Frame {
	t.Helper()
	f, err := fr.ReadFrame()
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return f
}

func TestDataFrameRoundTrip(t *testing.T) {
	fr, _ := pipeFramer()
	payload := []byte("hello, flow control")
	if err := fr.WriteData(5, true, payload); err != nil {
		t.Fatalf("WriteData: %v", err)
	}
	f, ok := readOne(t, fr).(*DataFrame)
	if !ok {
		t.Fatalf("got %T, want *DataFrame", f)
	}
	if f.Header().StreamID != 5 {
		t.Errorf("StreamID = %d, want 5", f.Header().StreamID)
	}
	if !f.StreamEnded() {
		t.Error("StreamEnded() = false, want true")
	}
	if !bytes.Equal(f.Data, payload) {
		t.Errorf("Data = %q, want %q", f.Data, payload)
	}
	if got := f.FlowControlLen(); got != len(payload) {
		t.Errorf("FlowControlLen() = %d, want %d", got, len(payload))
	}
}

func TestDataFrameZeroStreamIDRejected(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteData(0, false, []byte("x")); err != nil {
		t.Fatalf("WriteData: %v", err)
	}
	_, err := fr.ReadFrame()
	var ce ConnError
	if !errors.As(err, &ce) || ce.Code != ErrCodeProtocol {
		t.Fatalf("err = %v, want PROTOCOL_ERROR ConnError", err)
	}
}

func TestHeadersFrameRoundTripWithPriority(t *testing.T) {
	fr, _ := pipeFramer()
	frag := []byte{0x82, 0x86, 0x84}
	prio := PriorityParam{StreamDep: 3, Exclusive: true, Weight: 200}
	err := fr.WriteHeaders(HeadersParams{
		StreamID:   7,
		Fragment:   frag,
		EndStream:  true,
		EndHeaders: true,
		Priority:   prio,
	})
	if err != nil {
		t.Fatalf("WriteHeaders: %v", err)
	}
	f, ok := readOne(t, fr).(*HeadersFrame)
	if !ok {
		t.Fatalf("got %T, want *HeadersFrame", f)
	}
	if !f.HasPriority() {
		t.Fatal("HasPriority() = false, want true")
	}
	if f.Priority != prio {
		t.Errorf("Priority = %+v, want %+v", f.Priority, prio)
	}
	if !f.StreamEnded() || !f.HeadersEnded() {
		t.Error("END_STREAM/END_HEADERS flags lost in round trip")
	}
	if !bytes.Equal(f.Fragment, frag) {
		t.Errorf("Fragment = %x, want %x", f.Fragment, frag)
	}
}

func TestPriorityFrameRoundTrip(t *testing.T) {
	fr, _ := pipeFramer()
	prio := PriorityParam{StreamDep: 11, Exclusive: false, Weight: 15}
	if err := fr.WritePriority(9, prio); err != nil {
		t.Fatalf("WritePriority: %v", err)
	}
	f, ok := readOne(t, fr).(*PriorityFrame)
	if !ok {
		t.Fatalf("got %T, want *PriorityFrame", f)
	}
	if f.Priority != prio {
		t.Errorf("Priority = %+v, want %+v", f.Priority, prio)
	}
}

func TestPriorityFrameSelfDependencyEncodable(t *testing.T) {
	// H2Scope must be able to encode a stream depending on itself; the
	// framer must not "helpfully" reject it.
	fr, _ := pipeFramer()
	if err := fr.WritePriority(9, PriorityParam{StreamDep: 9, Weight: 1}); err != nil {
		t.Fatalf("WritePriority: %v", err)
	}
	f := readOne(t, fr).(*PriorityFrame)
	if f.Priority.StreamDep != 9 || f.Header().StreamID != 9 {
		t.Errorf("self-dependency mangled: stream=%d dep=%d", f.Header().StreamID, f.Priority.StreamDep)
	}
}

func TestPriorityFrameBadLength(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRawFrame(TypePriority, 0, 3, []byte{1, 2, 3}); err != nil {
		t.Fatalf("WriteRawFrame: %v", err)
	}
	_, err := fr.ReadFrame()
	var se StreamError
	if !errors.As(err, &se) || se.Code != ErrCodeFrameSize {
		t.Fatalf("err = %v, want FRAME_SIZE_ERROR StreamError", err)
	}
}

func TestRSTStreamRoundTrip(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRSTStream(13, ErrCodeRefusedStream); err != nil {
		t.Fatalf("WriteRSTStream: %v", err)
	}
	f, ok := readOne(t, fr).(*RSTStreamFrame)
	if !ok {
		t.Fatalf("got %T, want *RSTStreamFrame", f)
	}
	if f.Code != ErrCodeRefusedStream {
		t.Errorf("Code = %v, want REFUSED_STREAM", f.Code)
	}
}

func TestSettingsRoundTripAndValue(t *testing.T) {
	fr, _ := pipeFramer()
	err := fr.WriteSettings(
		Setting{SettingMaxConcurrentStreams, 128},
		Setting{SettingInitialWindowSize, 65536},
		Setting{SettingMaxConcurrentStreams, 100}, // later occurrence wins
	)
	if err != nil {
		t.Fatalf("WriteSettings: %v", err)
	}
	f, ok := readOne(t, fr).(*SettingsFrame)
	if !ok {
		t.Fatalf("got %T, want *SettingsFrame", f)
	}
	if v, found := f.Value(SettingMaxConcurrentStreams); !found || v != 100 {
		t.Errorf("Value(MAX_CONCURRENT_STREAMS) = %d,%v, want 100,true", v, found)
	}
	if v, found := f.Value(SettingInitialWindowSize); !found || v != 65536 {
		t.Errorf("Value(INITIAL_WINDOW_SIZE) = %d,%v, want 65536,true", v, found)
	}
	if _, found := f.Value(SettingMaxFrameSize); found {
		t.Error("Value(MAX_FRAME_SIZE) found = true, want false")
	}
}

func TestSettingsAck(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteSettingsAck(); err != nil {
		t.Fatalf("WriteSettingsAck: %v", err)
	}
	f := readOne(t, fr).(*SettingsFrame)
	if !f.IsAck() {
		t.Error("IsAck() = false, want true")
	}
	if len(f.Settings) != 0 {
		t.Errorf("ACK carried %d settings, want 0", len(f.Settings))
	}
}

func TestSettingsOnStreamRejected(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRawFrame(TypeSettings, 0, 1, nil); err != nil {
		t.Fatalf("WriteRawFrame: %v", err)
	}
	_, err := fr.ReadFrame()
	var ce ConnError
	if !errors.As(err, &ce) || ce.Code != ErrCodeProtocol {
		t.Fatalf("err = %v, want PROTOCOL_ERROR", err)
	}
}

func TestSettingsBadLengthRejected(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRawFrame(TypeSettings, 0, 0, []byte{0, 3, 0, 0}); err != nil {
		t.Fatalf("WriteRawFrame: %v", err)
	}
	_, err := fr.ReadFrame()
	var ce ConnError
	if !errors.As(err, &ce) || ce.Code != ErrCodeFrameSize {
		t.Fatalf("err = %v, want FRAME_SIZE_ERROR", err)
	}
}

func TestSettingValidation(t *testing.T) {
	tests := []struct {
		name    string
		setting Setting
		wantErr bool
	}{
		{"enable push 0", Setting{SettingEnablePush, 0}, false},
		{"enable push 1", Setting{SettingEnablePush, 1}, false},
		{"enable push 2", Setting{SettingEnablePush, 2}, true},
		{"initial window max", Setting{SettingInitialWindowSize, MaxWindowSize}, false},
		{"initial window overflow", Setting{SettingInitialWindowSize, MaxWindowSize + 1}, true},
		{"frame size default", Setting{SettingMaxFrameSize, DefaultMaxFrameSize}, false},
		{"frame size too small", Setting{SettingMaxFrameSize, DefaultMaxFrameSize - 1}, true},
		{"frame size max", Setting{SettingMaxFrameSize, MaxAllowedFrameSize}, false},
		{"frame size too large", Setting{SettingMaxFrameSize, MaxAllowedFrameSize + 1}, true},
		{"header table any", Setting{SettingHeaderTableSize, 1 << 30}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.setting.Valid()
			if (err != nil) != tt.wantErr {
				t.Errorf("Valid() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestPushPromiseRoundTrip(t *testing.T) {
	fr, _ := pipeFramer()
	frag := []byte{0x82, 0x84}
	if err := fr.WritePushPromise(1, 2, true, frag); err != nil {
		t.Fatalf("WritePushPromise: %v", err)
	}
	f, ok := readOne(t, fr).(*PushPromiseFrame)
	if !ok {
		t.Fatalf("got %T, want *PushPromiseFrame", f)
	}
	if f.PromiseID != 2 {
		t.Errorf("PromiseID = %d, want 2", f.PromiseID)
	}
	if !f.HeadersEnded() {
		t.Error("HeadersEnded() = false, want true")
	}
	if !bytes.Equal(f.Fragment, frag) {
		t.Errorf("Fragment = %x, want %x", f.Fragment, frag)
	}
}

func TestPingRoundTrip(t *testing.T) {
	fr, _ := pipeFramer()
	data := [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := fr.WritePing(false, data); err != nil {
		t.Fatalf("WritePing: %v", err)
	}
	f := readOne(t, fr).(*PingFrame)
	if f.IsAck() {
		t.Error("IsAck() = true, want false")
	}
	if f.Data != data {
		t.Errorf("Data = %v, want %v", f.Data, data)
	}
}

func TestPingWrongSizeRejected(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRawFrame(TypePing, 0, 0, []byte{1, 2, 3}); err != nil {
		t.Fatalf("WriteRawFrame: %v", err)
	}
	_, err := fr.ReadFrame()
	var ce ConnError
	if !errors.As(err, &ce) || ce.Code != ErrCodeFrameSize {
		t.Fatalf("err = %v, want FRAME_SIZE_ERROR", err)
	}
}

func TestGoAwayRoundTrip(t *testing.T) {
	fr, _ := pipeFramer()
	debug := []byte("window update shouldn't be zero")
	if err := fr.WriteGoAway(41, ErrCodeProtocol, debug); err != nil {
		t.Fatalf("WriteGoAway: %v", err)
	}
	f := readOne(t, fr).(*GoAwayFrame)
	if f.LastStreamID != 41 {
		t.Errorf("LastStreamID = %d, want 41", f.LastStreamID)
	}
	if f.Code != ErrCodeProtocol {
		t.Errorf("Code = %v, want PROTOCOL_ERROR", f.Code)
	}
	if !bytes.Equal(f.DebugData, debug) {
		t.Errorf("DebugData = %q, want %q", f.DebugData, debug)
	}
}

func TestWindowUpdateRoundTripIncludingZero(t *testing.T) {
	fr, _ := pipeFramer()
	for _, inc := range []uint32{0, 1, 65535, MaxWindowSize} {
		if err := fr.WriteWindowUpdate(3, inc); err != nil {
			t.Fatalf("WriteWindowUpdate(%d): %v", inc, err)
		}
		f := readOne(t, fr).(*WindowUpdateFrame)
		if f.Increment != inc {
			t.Errorf("Increment = %d, want %d", f.Increment, inc)
		}
	}
}

func TestContinuationRoundTrip(t *testing.T) {
	fr, _ := pipeFramer()
	frag := []byte("rest of header block")
	if err := fr.WriteContinuation(7, true, frag); err != nil {
		t.Fatalf("WriteContinuation: %v", err)
	}
	f := readOne(t, fr).(*ContinuationFrame)
	if !f.HeadersEnded() {
		t.Error("HeadersEnded() = false, want true")
	}
	if !bytes.Equal(f.Fragment, frag) {
		t.Errorf("Fragment = %q, want %q", f.Fragment, frag)
	}
}

func TestUnknownFrameTypeIgnored(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRawFrame(Type(0xBE), 0x7, 21, []byte{9, 9}); err != nil {
		t.Fatalf("WriteRawFrame: %v", err)
	}
	f, ok := readOne(t, fr).(*UnknownFrame)
	if !ok {
		t.Fatalf("got %T, want *UnknownFrame", f)
	}
	if f.Header().Type != Type(0xBE) || f.Header().StreamID != 21 {
		t.Errorf("header = %v", f.Header())
	}
}

func TestReadFrameEOF(t *testing.T) {
	fr, _ := pipeFramer()
	if _, err := fr.ReadFrame(); err != io.EOF {
		t.Fatalf("ReadFrame on empty stream = %v, want io.EOF", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	// Header promising 10 bytes, only 2 present.
	buf.Write([]byte{0, 0, 10, byte(TypeData), 0, 0, 0, 0, 1, 0xAB, 0xCD})
	fr := NewFramer(io.Discard, &buf)
	if _, err := fr.ReadFrame(); err == nil {
		t.Fatal("ReadFrame on truncated payload succeeded, want error")
	}
}

func TestMaxReadFrameSizeEnforced(t *testing.T) {
	fr, _ := pipeFramer()
	fr.SetMaxReadFrameSize(DefaultMaxFrameSize)
	big := make([]byte, DefaultMaxFrameSize+1)
	if err := fr.WriteData(1, false, big); err != nil {
		t.Fatalf("WriteData: %v", err)
	}
	if _, err := fr.ReadFrame(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestHeaderEncodeParseProperty(t *testing.T) {
	prop := func(length uint32, typ, flags uint8, stream uint32) bool {
		h := Header{
			Length:   length % (1 << 24),
			Type:     Type(typ),
			Flags:    Flags(flags),
			StreamID: stream & MaxStreamID,
		}
		var buf [HeaderLen]byte
		h.encodeTo(buf[:])
		return parseHeader(buf[:]) == h
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDataRoundTripProperty(t *testing.T) {
	prop := func(stream uint32, end bool, data []byte) bool {
		stream = stream&MaxStreamID | 1 // nonzero
		if len(data) > DefaultMaxFrameSize {
			data = data[:DefaultMaxFrameSize]
		}
		fr, _ := pipeFramer()
		if err := fr.WriteData(stream, end, data); err != nil {
			return false
		}
		f, err := fr.ReadFrame()
		if err != nil {
			return false
		}
		df, ok := f.(*DataFrame)
		return ok && df.Header().StreamID == stream && df.StreamEnded() == end && bytes.Equal(df.Data, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeAndErrCodeStrings(t *testing.T) {
	if got := TypeWindowUpdate.String(); got != "WINDOW_UPDATE" {
		t.Errorf("TypeWindowUpdate.String() = %q", got)
	}
	if got := Type(0xFE).String(); got != "UNKNOWN_FRAME_TYPE_254" {
		t.Errorf("unknown type string = %q", got)
	}
	if got := ErrCodeEnhanceYourCalm.String(); got != "ENHANCE_YOUR_CALM" {
		t.Errorf("ErrCodeEnhanceYourCalm.String() = %q", got)
	}
	if got := (ConnError{ErrCodeProtocol, "x"}).Error(); got == "" {
		t.Error("ConnError.Error() empty")
	}
	if got := (StreamError{1, ErrCodeCancel, "y"}).Error(); got == "" {
		t.Error("StreamError.Error() empty")
	}
}

// buildPadded constructs a padded DATA or HEADERS payload by hand, since
// the writer never emits padding but the reader must accept it.
func buildPadded(data []byte, padLen int) []byte {
	p := make([]byte, 0, 1+len(data)+padLen)
	p = append(p, byte(padLen))
	p = append(p, data...)
	return append(p, make([]byte, padLen)...)
}

func TestPaddedDataFrameRead(t *testing.T) {
	fr, _ := pipeFramer()
	payload := buildPadded([]byte("abc"), 5)
	if err := fr.WriteRawFrame(TypeData, FlagPadded|FlagEndStream, 7, payload); err != nil {
		t.Fatal(err)
	}
	f := readOne(t, fr).(*DataFrame)
	if !bytes.Equal(f.Data, []byte("abc")) {
		t.Errorf("Data = %q", f.Data)
	}
	if f.PadLength != 5 {
		t.Errorf("PadLength = %d, want 5", f.PadLength)
	}
	// Flow control covers data + padding + the pad-length octet.
	if got := f.FlowControlLen(); got != 3+5+1 {
		t.Errorf("FlowControlLen = %d, want 9", got)
	}
}

func TestPaddedDataPaddingExceedsPayload(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRawFrame(TypeData, FlagPadded, 7, []byte{200, 'a'}); err != nil {
		t.Fatal(err)
	}
	_, err := fr.ReadFrame()
	var ce ConnError
	if !errors.As(err, &ce) || ce.Code != ErrCodeProtocol {
		t.Fatalf("err = %v, want PROTOCOL_ERROR", err)
	}
}

func TestPaddedEmptyDataRejected(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRawFrame(TypeData, FlagPadded, 7, nil); err != nil {
		t.Fatal(err)
	}
	_, err := fr.ReadFrame()
	var ce ConnError
	if !errors.As(err, &ce) || ce.Code != ErrCodeFrameSize {
		t.Fatalf("err = %v, want FRAME_SIZE_ERROR", err)
	}
}

func TestPaddedHeadersFrameRead(t *testing.T) {
	fr, _ := pipeFramer()
	frag := []byte{0x82, 0x86}
	payload := buildPadded(frag, 3)
	if err := fr.WriteRawFrame(TypeHeaders, FlagPadded|FlagEndHeaders, 9, payload); err != nil {
		t.Fatal(err)
	}
	f := readOne(t, fr).(*HeadersFrame)
	if !bytes.Equal(f.Fragment, frag) {
		t.Errorf("Fragment = %x, want %x", f.Fragment, frag)
	}
	if f.PadLength != 3 {
		t.Errorf("PadLength = %d", f.PadLength)
	}
}

func TestPaddedHeadersWithPriorityRead(t *testing.T) {
	fr, _ := pipeFramer()
	frag := []byte{0x82}
	// pad-length(1) + stream-dep(4) + weight(1) + fragment + padding.
	payload := []byte{2, 0x80, 0, 0, 3, 99}
	payload = append(payload, frag...)
	payload = append(payload, 0, 0)
	if err := fr.WriteRawFrame(TypeHeaders, FlagPadded|FlagPriority|FlagEndHeaders, 9, payload); err != nil {
		t.Fatal(err)
	}
	f := readOne(t, fr).(*HeadersFrame)
	if !f.Priority.Exclusive || f.Priority.StreamDep != 3 || f.Priority.Weight != 99 {
		t.Errorf("Priority = %+v", f.Priority)
	}
	if !bytes.Equal(f.Fragment, frag) {
		t.Errorf("Fragment = %x", f.Fragment)
	}
}

func TestHeadersPriorityTruncated(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRawFrame(TypeHeaders, FlagPriority, 9, []byte{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	_, err := fr.ReadFrame()
	var ce ConnError
	if !errors.As(err, &ce) || ce.Code != ErrCodeFrameSize {
		t.Fatalf("err = %v, want FRAME_SIZE_ERROR", err)
	}
}

func TestGoAwayTooShort(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRawFrame(TypeGoAway, 0, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_, err := fr.ReadFrame()
	var ce ConnError
	if !errors.As(err, &ce) || ce.Code != ErrCodeFrameSize {
		t.Fatalf("err = %v, want FRAME_SIZE_ERROR", err)
	}
}

func TestRSTStreamZeroStream(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRawFrame(TypeRSTStream, 0, 0, []byte{0, 0, 0, 8}); err != nil {
		t.Fatal(err)
	}
	_, err := fr.ReadFrame()
	var ce ConnError
	if !errors.As(err, &ce) || ce.Code != ErrCodeProtocol {
		t.Fatalf("err = %v, want PROTOCOL_ERROR", err)
	}
}

func TestNonStrictFramerToleratesViolations(t *testing.T) {
	fr, _ := pipeFramer()
	fr.Strict = false
	if err := fr.WriteRawFrame(TypeData, 0, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	f, err := fr.ReadFrame()
	if err != nil {
		t.Fatalf("non-strict framer returned %v", err)
	}
	if _, ok := f.(*UnknownFrame); !ok {
		t.Fatalf("got %T, want *UnknownFrame envelope", f)
	}
}

func TestWritePayloadTooLargeRejected(t *testing.T) {
	fr, _ := pipeFramer()
	if err := fr.WriteRawFrame(TypeData, 0, 1, make([]byte, 1<<24)); err == nil {
		t.Fatal("24-bit length overflow accepted")
	}
}
