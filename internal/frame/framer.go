package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
)

// ErrFrameTooLarge is returned by ReadFrame when an incoming frame exceeds
// the framer's configured maximum read size.
var ErrFrameTooLarge = errors.New("frame: frame payload exceeds maximum read size")

// maxRetainedReadBuf caps the payload buffer a Framer keeps between
// ReadFrame calls. Frames up to this size are read into a recycled buffer
// (zero allocations in steady state); larger frames — legal up to 16 MiB —
// get a one-shot buffer that is garbage once the caller drops the frame, so
// a single census target sending jumbo frames cannot pin megabytes on every
// live connection.
const maxRetainedReadBuf = 64 << 10

// DefaultWriteBufferSize is the coalescing threshold installed by
// SetWriteBuffering(0): once at least this many pending octets accumulate,
// endWrite flushes even without an explicit Flush call.
const DefaultWriteBufferSize = 16 << 10

// Framer reads and writes HTTP/2 frames on an underlying byte stream.
//
// A Framer is safe for one concurrent reader plus one concurrent writer:
// reads and writes use separate buffers and the write path is serialized
// internally with a mutex. That matches how both the client connection and
// the server use it (a read loop plus multiple writers).
//
// # Read buffer ownership
//
// ReadFrame recycles both the payload buffer and the typed frame structs it
// returns: the Frame and every payload slice reachable from it (DataFrame.Data,
// HeadersFrame.Fragment, SettingsFrame.Settings, GoAwayFrame.DebugData, …)
// are valid only until the next ReadFrame call on the same Framer. Callers
// that retain a frame past that point — queues, logs, test channels — must
// detach it first with CopyPayload.
//
// # Write coalescing
//
// By default every frame write issues one Write on the underlying writer,
// exactly as a naive framer would. SetWriteBuffering switches the framer to
// coalesced mode: frame writes accumulate in an internal buffer and reach
// the wire only on Flush (or when the pending bytes exceed the configured
// threshold). In coalesced mode the caller owns the flush schedule and MUST
// call Flush before blocking on a read, or the peer never sees the frames
// it is expected to answer.
type Framer struct {
	r io.Reader

	// readHdr and readBuf are owned by the reading goroutine.
	readHdr [HeaderLen]byte
	readBuf []byte
	// scratch holds the recycled typed frames ReadFrame hands out; owned by
	// the reading goroutine, overwritten on every ReadFrame.
	scratch frameScratch
	// maxReadSize limits accepted payload sizes; guarded by wmu because the
	// read loop and the settings writer may race on it.
	maxReadSize uint32

	wmu sync.Mutex
	w   io.Writer
	// wbuf accumulates encoded frames. In unbuffered mode it holds at most
	// the frame under construction; in coalesced mode it is the pending
	// batch, flushed by Flush or by crossing flushThreshold.
	wbuf []byte
	// frameStart is the offset in wbuf of the frame under construction (its
	// length field is patched there by endWrite).
	frameStart int
	// buffered enables write coalescing; flushThreshold bounds the pending
	// batch size.
	buffered       bool
	flushThreshold int

	// Strict, when set, makes ReadFrame reject frames that violate RFC 7540
	// framing rules (wrong stream IDs, bad lengths) with ConnError instead
	// of surfacing them. Probing clients keep it on; lenient test harnesses
	// may turn it off.
	Strict bool

	// trace, when set, observes every frame header crossing the framer in
	// either direction. It is the single instrumentation point shared by the
	// probing client and the testbed server.
	trace func(sent bool, hdr Header)

	// metrics, when set, counts frames, wire bytes, and read errors. Same
	// discipline as trace: install via SetMetrics before the framer is used.
	metrics *Metrics
}

// frameScratch holds one instance of every typed frame plus the slices they
// reuse, so steady-state ReadFrame performs zero heap allocations.
type frameScratch struct {
	data         DataFrame
	headers      HeadersFrame
	priority     PriorityFrame
	rst          RSTStreamFrame
	settings     SettingsFrame
	push         PushPromiseFrame
	ping         PingFrame
	goAway       GoAwayFrame
	windowUpdate WindowUpdateFrame
	continuation ContinuationFrame
	unknown      UnknownFrame
	// settingsBuf backs SettingsFrame.Settings across reads.
	settingsBuf []Setting
}

// NewFramer returns a Framer reading from r and writing to w.
func NewFramer(w io.Writer, r io.Reader) *Framer {
	return &Framer{
		r:           r,
		w:           w,
		maxReadSize: MaxAllowedFrameSize,
		Strict:      true,
	}
}

// SetTrace installs fn to observe every frame header the framer reads
// (sent == false) or writes (sent == true). Received frames are reported
// after the full payload arrives but before validation, so deliberately
// malformed frames still show up in traces; written frames are reported
// once the frame is committed to the write path (in coalesced mode that is
// when it enters the pending buffer, not when it reaches the wire). fn must
// be safe for concurrent calls from the reader and writer goroutines, and
// SetTrace must be called before the framer is in use (there is no lock on
// the hook itself).
func (fr *Framer) SetTrace(fn func(sent bool, hdr Header)) {
	fr.trace = fn
}

// SetWriteBuffering switches the framer to coalesced writes: frames
// accumulate in an internal buffer and reach the underlying writer in a
// single Write per Flush. threshold bounds the pending batch — once at
// least that many octets are pending, endWrite flushes on its own;
// threshold <= 0 applies DefaultWriteBufferSize. Callers own the flush
// schedule: always Flush before blocking on a read. Call it before the
// framer is in use, alongside SetTrace/SetMetrics.
func (fr *Framer) SetWriteBuffering(threshold int) {
	if threshold <= 0 {
		threshold = DefaultWriteBufferSize
	}
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	fr.buffered = true
	fr.flushThreshold = threshold
}

// Flush writes all pending coalesced frames to the underlying writer in one
// Write call. It is a no-op when nothing is pending (in particular for
// unbuffered framers), so it is always safe to call.
func (fr *Framer) Flush() error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	return fr.flushLocked()
}

func (fr *Framer) flushLocked() error {
	if len(fr.wbuf) == 0 {
		return nil
	}
	_, err := fr.w.Write(fr.wbuf)
	fr.wbuf = fr.wbuf[:0]
	fr.frameStart = 0
	if err != nil {
		return fmt.Errorf("frame: write: %w", err)
	}
	return nil
}

// WriteRawBytes appends b verbatim to the write path — in coalesced mode it
// joins the pending batch, otherwise it is written immediately. h2conn uses
// it to put the client connection preface in the same Write as the initial
// SETTINGS frame. The bytes bypass frame accounting (no trace, no metrics):
// they are not a frame.
func (fr *Framer) WriteRawBytes(b []byte) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	fr.wbuf = append(fr.wbuf, b...)
	fr.frameStart = len(fr.wbuf)
	if !fr.buffered || len(fr.wbuf) >= fr.flushThreshold {
		return fr.flushLocked()
	}
	return nil
}

// SetMaxReadFrameSize caps the payload size ReadFrame will accept.
func (fr *Framer) SetMaxReadFrameSize(n uint32) {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	if n < DefaultMaxFrameSize {
		n = DefaultMaxFrameSize
	}
	if n > MaxAllowedFrameSize {
		n = MaxAllowedFrameSize
	}
	fr.maxReadSize = n
}

func (fr *Framer) maxRead() uint32 {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	return fr.maxReadSize
}

// readPayloadBuf returns a length-n buffer for the next payload. Frames up
// to maxRetainedReadBuf share the recycled buffer (grown in powers of two
// so steady state settles after a handful of allocations); anything larger
// is a one-shot allocation the framer does not keep.
func (fr *Framer) readPayloadBuf(n int) []byte {
	if n <= cap(fr.readBuf) {
		return fr.readBuf[:n]
	}
	if n > maxRetainedReadBuf {
		return make([]byte, n)
	}
	//h2lint:ignore hotalloc amortized power-of-two growth; steady state reuses the retained buffer
	fr.readBuf = make([]byte, 1<<bits.Len(uint(n-1)))
	return fr.readBuf[:n]
}

// ReadFrame reads one frame from the underlying reader.
//
// The returned Frame and all payload slices reachable from it live in
// buffers the framer recycles: they are valid only until the next ReadFrame
// call. Use CopyPayload to retain a frame longer.
func (fr *Framer) ReadFrame() (Frame, error) {
	if _, err := io.ReadFull(fr.r, fr.readHdr[:]); err != nil {
		// A clean EOF between frames is the normal end of a connection, not a
		// framing failure; everything else (including a torn header) counts.
		if fr.metrics != nil && err != io.EOF {
			fr.metrics.readErrors.Inc()
		}
		return nil, err
	}
	hdr := parseHeader(fr.readHdr[:])
	if hdr.Length > fr.maxRead() {
		if fr.metrics != nil {
			fr.metrics.readErrors.Inc()
		}
		return nil, ErrFrameTooLarge
	}
	payload := fr.readPayloadBuf(int(hdr.Length))
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if fr.metrics != nil {
			fr.metrics.readErrors.Inc()
		}
		return nil, fmt.Errorf("frame: short payload for %v: %w", hdr, err)
	}
	if fr.trace != nil {
		fr.trace(false, hdr)
	}
	if fr.metrics != nil {
		fr.metrics.observe(false, hdr)
	}
	f, err := fr.parsePayload(hdr, payload)
	if err != nil && !fr.Strict {
		fr.scratch.unknown = UnknownFrame{hdr: hdr, Payload: payload}
		return &fr.scratch.unknown, nil
	}
	if err != nil && fr.metrics != nil {
		fr.metrics.readErrors.Inc()
	}
	return f, err
}

func (fr *Framer) parsePayload(hdr Header, p []byte) (Frame, error) {
	switch hdr.Type {
	case TypeData:
		return fr.parseDataFrame(hdr, p)
	case TypeHeaders:
		return fr.parseHeadersFrame(hdr, p)
	case TypePriority:
		return fr.parsePriorityFrame(hdr, p)
	case TypeRSTStream:
		return fr.parseRSTStreamFrame(hdr, p)
	case TypeSettings:
		return fr.parseSettingsFrame(hdr, p)
	case TypePushPromise:
		return fr.parsePushPromiseFrame(hdr, p)
	case TypePing:
		return fr.parsePingFrame(hdr, p)
	case TypeGoAway:
		return fr.parseGoAwayFrame(hdr, p)
	case TypeWindowUpdate:
		return fr.parseWindowUpdateFrame(hdr, p)
	case TypeContinuation:
		return fr.parseContinuationFrame(hdr, p)
	default:
		fr.scratch.unknown = UnknownFrame{hdr: hdr, Payload: p}
		return &fr.scratch.unknown, nil
	}
}

func (fr *Framer) parseDataFrame(hdr Header, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, ConnError{ErrCodeProtocol, "DATA frame with stream ID 0"}
	}
	f := &fr.scratch.data
	*f = DataFrame{hdr: hdr}
	if hdr.Flags.Has(FlagPadded) {
		if len(p) == 0 {
			return nil, ConnError{ErrCodeFrameSize, "padded DATA frame with empty payload"}
		}
		f.PadLength = int(p[0])
		p = p[1:]
		if f.PadLength > len(p) {
			return nil, ConnError{ErrCodeProtocol, "DATA padding exceeds payload"}
		}
		p = p[:len(p)-f.PadLength]
	}
	f.Data = p
	return f, nil
}

func (fr *Framer) parseHeadersFrame(hdr Header, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, ConnError{ErrCodeProtocol, "HEADERS frame with stream ID 0"}
	}
	f := &fr.scratch.headers
	*f = HeadersFrame{hdr: hdr}
	if hdr.Flags.Has(FlagPadded) {
		if len(p) == 0 {
			return nil, ConnError{ErrCodeFrameSize, "padded HEADERS frame with empty payload"}
		}
		f.PadLength = int(p[0])
		p = p[1:]
	}
	if hdr.Flags.Has(FlagPriority) {
		if len(p) < 5 {
			return nil, ConnError{ErrCodeFrameSize, "HEADERS priority fields truncated"}
		}
		dep := binary.BigEndian.Uint32(p[0:4])
		f.Priority = PriorityParam{
			StreamDep: dep & MaxStreamID,
			Exclusive: dep&(1<<31) != 0,
			Weight:    p[4],
		}
		p = p[5:]
	}
	if f.PadLength > len(p) {
		return nil, ConnError{ErrCodeProtocol, "HEADERS padding exceeds payload"}
	}
	f.Fragment = p[:len(p)-f.PadLength]
	return f, nil
}

func (fr *Framer) parsePriorityFrame(hdr Header, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, ConnError{ErrCodeProtocol, "PRIORITY frame with stream ID 0"}
	}
	if len(p) != 5 {
		return nil, StreamError{hdr.StreamID, ErrCodeFrameSize, "PRIORITY payload must be 5 bytes"}
	}
	dep := binary.BigEndian.Uint32(p[0:4])
	f := &fr.scratch.priority
	*f = PriorityFrame{
		hdr: hdr,
		Priority: PriorityParam{
			StreamDep: dep & MaxStreamID,
			Exclusive: dep&(1<<31) != 0,
			Weight:    p[4],
		},
	}
	return f, nil
}

func (fr *Framer) parseRSTStreamFrame(hdr Header, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, ConnError{ErrCodeProtocol, "RST_STREAM frame with stream ID 0"}
	}
	if len(p) != 4 {
		return nil, ConnError{ErrCodeFrameSize, "RST_STREAM payload must be 4 bytes"}
	}
	f := &fr.scratch.rst
	*f = RSTStreamFrame{hdr: hdr, Code: ErrCode(binary.BigEndian.Uint32(p))}
	return f, nil
}

func (fr *Framer) parseSettingsFrame(hdr Header, p []byte) (Frame, error) {
	if hdr.StreamID != 0 {
		return nil, ConnError{ErrCodeProtocol, "SETTINGS frame with nonzero stream ID"}
	}
	if hdr.Flags.Has(FlagAck) && len(p) != 0 {
		return nil, ConnError{ErrCodeFrameSize, "SETTINGS ACK with payload"}
	}
	if len(p)%6 != 0 {
		return nil, ConnError{ErrCodeFrameSize, "SETTINGS payload not a multiple of 6"}
	}
	settings := fr.scratch.settingsBuf[:0]
	for i := 0; i+6 <= len(p); i += 6 {
		settings = append(settings, Setting{
			ID:  SettingID(binary.BigEndian.Uint16(p[i : i+2])),
			Val: binary.BigEndian.Uint32(p[i+2 : i+6]),
		})
	}
	fr.scratch.settingsBuf = settings
	f := &fr.scratch.settings
	*f = SettingsFrame{hdr: hdr, Settings: settings}
	return f, nil
}

func (fr *Framer) parsePushPromiseFrame(hdr Header, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, ConnError{ErrCodeProtocol, "PUSH_PROMISE frame with stream ID 0"}
	}
	f := &fr.scratch.push
	*f = PushPromiseFrame{hdr: hdr}
	if hdr.Flags.Has(FlagPadded) {
		if len(p) == 0 {
			return nil, ConnError{ErrCodeFrameSize, "padded PUSH_PROMISE with empty payload"}
		}
		f.PadLength = int(p[0])
		p = p[1:]
	}
	if len(p) < 4 {
		return nil, ConnError{ErrCodeFrameSize, "PUSH_PROMISE missing promised stream ID"}
	}
	f.PromiseID = binary.BigEndian.Uint32(p[0:4]) & MaxStreamID
	p = p[4:]
	if f.PadLength > len(p) {
		return nil, ConnError{ErrCodeProtocol, "PUSH_PROMISE padding exceeds payload"}
	}
	f.Fragment = p[:len(p)-f.PadLength]
	return f, nil
}

func (fr *Framer) parsePingFrame(hdr Header, p []byte) (Frame, error) {
	if hdr.StreamID != 0 {
		return nil, ConnError{ErrCodeProtocol, "PING frame with nonzero stream ID"}
	}
	if len(p) != 8 {
		return nil, ConnError{ErrCodeFrameSize, "PING payload must be 8 bytes"}
	}
	f := &fr.scratch.ping
	*f = PingFrame{hdr: hdr}
	copy(f.Data[:], p)
	return f, nil
}

func (fr *Framer) parseGoAwayFrame(hdr Header, p []byte) (Frame, error) {
	if hdr.StreamID != 0 {
		return nil, ConnError{ErrCodeProtocol, "GOAWAY frame with nonzero stream ID"}
	}
	if len(p) < 8 {
		return nil, ConnError{ErrCodeFrameSize, "GOAWAY payload shorter than 8 bytes"}
	}
	f := &fr.scratch.goAway
	*f = GoAwayFrame{
		hdr:          hdr,
		LastStreamID: binary.BigEndian.Uint32(p[0:4]) & MaxStreamID,
		Code:         ErrCode(binary.BigEndian.Uint32(p[4:8])),
		DebugData:    p[8:],
	}
	return f, nil
}

func (fr *Framer) parseWindowUpdateFrame(hdr Header, p []byte) (Frame, error) {
	if len(p) != 4 {
		return nil, ConnError{ErrCodeFrameSize, "WINDOW_UPDATE payload must be 4 bytes"}
	}
	f := &fr.scratch.windowUpdate
	*f = WindowUpdateFrame{
		hdr:       hdr,
		Increment: binary.BigEndian.Uint32(p) & MaxStreamID,
	}
	return f, nil
}

func (fr *Framer) parseContinuationFrame(hdr Header, p []byte) (Frame, error) {
	if hdr.StreamID == 0 {
		return nil, ConnError{ErrCodeProtocol, "CONTINUATION frame with stream ID 0"}
	}
	f := &fr.scratch.continuation
	*f = ContinuationFrame{hdr: hdr, Fragment: p}
	return f, nil
}

// CopyPayload returns a deep copy of f detached from the framer's recycled
// read buffers: the returned Frame and every payload slice it carries stay
// valid indefinitely. Use it at the few call sites that retain a frame past
// the next ReadFrame (queues, channels, transcripts); everything else can
// read the recycled frame for free.
func CopyPayload(f Frame) Frame {
	switch f := f.(type) {
	case *DataFrame:
		c := *f
		c.Data = append([]byte(nil), f.Data...)
		return &c
	case *HeadersFrame:
		c := *f
		c.Fragment = append([]byte(nil), f.Fragment...)
		return &c
	case *PriorityFrame:
		c := *f
		return &c
	case *RSTStreamFrame:
		c := *f
		return &c
	case *SettingsFrame:
		c := *f
		c.Settings = append([]Setting(nil), f.Settings...)
		return &c
	case *PushPromiseFrame:
		c := *f
		c.Fragment = append([]byte(nil), f.Fragment...)
		return &c
	case *PingFrame:
		c := *f
		return &c
	case *GoAwayFrame:
		c := *f
		c.DebugData = append([]byte(nil), f.DebugData...)
		return &c
	case *WindowUpdateFrame:
		c := *f
		return &c
	case *ContinuationFrame:
		c := *f
		c.Fragment = append([]byte(nil), f.Fragment...)
		return &c
	case *UnknownFrame:
		c := *f
		c.Payload = append([]byte(nil), f.Payload...)
		return &c
	default:
		return f
	}
}

// startWrite begins a frame under wmu at the current end of wbuf.
func (fr *Framer) startWrite(t Type, flags Flags, streamID uint32) {
	fr.frameStart = len(fr.wbuf)
	fr.wbuf = append(fr.wbuf,
		0, 0, 0, // length, patched in endWrite
		byte(t),
		byte(flags),
		byte(streamID>>24), byte(streamID>>16), byte(streamID>>8), byte(streamID))
}

func (fr *Framer) endWrite() error {
	length := len(fr.wbuf) - fr.frameStart - HeaderLen
	if length >= 1<<24 {
		// Drop the malformed frame from the buffer so coalesced peers never
		// see it.
		fr.wbuf = fr.wbuf[:fr.frameStart]
		return fmt.Errorf("frame: payload of %d bytes exceeds 24-bit length field", length)
	}
	frameHdr := fr.wbuf[fr.frameStart:]
	frameHdr[0] = byte(length >> 16)
	frameHdr[1] = byte(length >> 8)
	frameHdr[2] = byte(length)
	hdr := parseHeader(frameHdr[:HeaderLen])
	if !fr.buffered || len(fr.wbuf) >= fr.flushThreshold {
		if err := fr.flushLocked(); err != nil {
			return err
		}
	}
	if fr.trace != nil {
		fr.trace(true, hdr)
	}
	if fr.metrics != nil {
		fr.metrics.observe(true, hdr)
	}
	return nil
}

func (fr *Framer) writeUint32(v uint32) {
	fr.wbuf = append(fr.wbuf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// WriteData writes a DATA frame. Padding is not applied (pad == nil path is
// the only one the reproduction needs on the write side).
func (fr *Framer) WriteData(streamID uint32, endStream bool, data []byte) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	var flags Flags
	if endStream {
		flags |= FlagEndStream
	}
	fr.startWrite(TypeData, flags, streamID)
	fr.wbuf = append(fr.wbuf, data...)
	return fr.endWrite()
}

// HeadersParams configures WriteHeaders.
type HeadersParams struct {
	// StreamID is the stream to open or continue.
	StreamID uint32
	// Fragment is the HPACK-encoded header block fragment.
	Fragment []byte
	// EndStream sets END_STREAM.
	EndStream bool
	// EndHeaders sets END_HEADERS.
	EndHeaders bool
	// Priority, when non-zero, is encoded with FlagPriority.
	Priority PriorityParam
}

// WriteHeaders writes a HEADERS frame.
func (fr *Framer) WriteHeaders(p HeadersParams) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	var flags Flags
	if p.EndStream {
		flags |= FlagEndStream
	}
	if p.EndHeaders {
		flags |= FlagEndHeaders
	}
	if !p.Priority.IsZero() {
		flags |= FlagPriority
	}
	fr.startWrite(TypeHeaders, flags, p.StreamID)
	if !p.Priority.IsZero() {
		dep := p.Priority.StreamDep & MaxStreamID
		if p.Priority.Exclusive {
			dep |= 1 << 31
		}
		fr.writeUint32(dep)
		fr.wbuf = append(fr.wbuf, p.Priority.Weight)
	}
	fr.wbuf = append(fr.wbuf, p.Fragment...)
	return fr.endWrite()
}

// WritePriority writes a PRIORITY frame. It happily encodes self-dependent
// streams; H2Scope's self-dependency probe relies on that.
func (fr *Framer) WritePriority(streamID uint32, p PriorityParam) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	fr.startWrite(TypePriority, 0, streamID)
	dep := p.StreamDep & MaxStreamID
	if p.Exclusive {
		dep |= 1 << 31
	}
	fr.writeUint32(dep)
	fr.wbuf = append(fr.wbuf, p.Weight)
	return fr.endWrite()
}

// WriteRSTStream writes an RST_STREAM frame.
func (fr *Framer) WriteRSTStream(streamID uint32, code ErrCode) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	fr.startWrite(TypeRSTStream, 0, streamID)
	fr.writeUint32(uint32(code))
	return fr.endWrite()
}

// WriteSettings writes a (non-ACK) SETTINGS frame.
func (fr *Framer) WriteSettings(settings ...Setting) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	fr.startWrite(TypeSettings, 0, 0)
	for _, s := range settings {
		fr.wbuf = append(fr.wbuf, byte(s.ID>>8), byte(s.ID))
		fr.writeUint32(s.Val)
	}
	return fr.endWrite()
}

// WriteSettingsAck writes a SETTINGS frame with the ACK flag.
func (fr *Framer) WriteSettingsAck() error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	fr.startWrite(TypeSettings, FlagAck, 0)
	return fr.endWrite()
}

// WritePushPromise writes a PUSH_PROMISE frame.
func (fr *Framer) WritePushPromise(streamID, promiseID uint32, endHeaders bool, fragment []byte) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	var flags Flags
	if endHeaders {
		flags |= FlagEndHeaders
	}
	fr.startWrite(TypePushPromise, flags, streamID)
	fr.writeUint32(promiseID & MaxStreamID)
	fr.wbuf = append(fr.wbuf, fragment...)
	return fr.endWrite()
}

// WritePing writes a PING frame.
func (fr *Framer) WritePing(ack bool, data [8]byte) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	var flags Flags
	if ack {
		flags |= FlagAck
	}
	fr.startWrite(TypePing, flags, 0)
	fr.wbuf = append(fr.wbuf, data[:]...)
	return fr.endWrite()
}

// WriteGoAway writes a GOAWAY frame.
func (fr *Framer) WriteGoAway(lastStreamID uint32, code ErrCode, debug []byte) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	fr.startWrite(TypeGoAway, 0, 0)
	fr.writeUint32(lastStreamID & MaxStreamID)
	fr.writeUint32(uint32(code))
	fr.wbuf = append(fr.wbuf, debug...)
	return fr.endWrite()
}

// WriteWindowUpdate writes a WINDOW_UPDATE frame. Increment 0 and increments
// that would overflow a peer's window are encoded as-is: the probes need to
// send them.
func (fr *Framer) WriteWindowUpdate(streamID, increment uint32) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	fr.startWrite(TypeWindowUpdate, 0, streamID)
	fr.writeUint32(increment & MaxStreamID)
	return fr.endWrite()
}

// WriteContinuation writes a CONTINUATION frame.
func (fr *Framer) WriteContinuation(streamID uint32, endHeaders bool, fragment []byte) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	var flags Flags
	if endHeaders {
		flags |= FlagEndHeaders
	}
	fr.startWrite(TypeContinuation, flags, streamID)
	fr.wbuf = append(fr.wbuf, fragment...)
	return fr.endWrite()
}

// WriteRawFrame writes an arbitrary frame verbatim. Probes use it to emit
// deliberately malformed frames.
func (fr *Framer) WriteRawFrame(t Type, flags Flags, streamID uint32, payload []byte) error {
	fr.wmu.Lock()
	defer fr.wmu.Unlock()
	fr.startWrite(t, flags, streamID)
	fr.wbuf = append(fr.wbuf, payload...)
	return fr.endWrite()
}
