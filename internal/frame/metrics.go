package frame

import (
	"h2scope/internal/metrics"
)

// metricTypeSlots is one slot per RFC 7540 frame type (0x0–0x9) plus a
// trailing catch-all for extension/unknown types.
const metricTypeSlots = int(TypeContinuation) + 2

// Metrics instruments a Framer: per-frame-type frame and byte counters in
// both directions, plus a read-error counter. All instruments are created
// eagerly at construction, so the per-frame path is a table index and two
// atomic adds — no lookups, no allocation.
type Metrics struct {
	readFrames    [metricTypeSlots]*metrics.Counter
	readBytes     [metricTypeSlots]*metrics.Counter
	writtenFrames [metricTypeSlots]*metrics.Counter
	writtenBytes  [metricTypeSlots]*metrics.Counter
	readErrors    *metrics.Counter
}

// NewMetrics registers the framer instrument set in r:
//
//	h2_frames_read_total{type=...}        frames received, per type
//	h2_frame_bytes_read_total{type=...}   wire bytes received (header included)
//	h2_frames_written_total{type=...}     frames sent, per type
//	h2_frame_bytes_written_total{type=...} wire bytes sent (header included)
//	h2_framer_read_errors_total           ReadFrame failures (EOF excluded)
//
// Registries get-or-create by name, so every Framer in a process sharing one
// registry accumulates into the same counters.
func NewMetrics(r *metrics.Registry) *Metrics {
	m := &Metrics{
		readErrors: r.Counter("h2_framer_read_errors_total",
			"frame read failures: truncated frames, oversized payloads, strict-mode violations (clean EOF excluded)"),
	}
	for i := 0; i < metricTypeSlots; i++ {
		name := Type(i).String()
		if i == metricTypeSlots-1 {
			name = "UNKNOWN"
		}
		m.readFrames[i] = r.Counter(metrics.Label("h2_frames_read_total", "type", name),
			"frames received, by frame type")
		m.readBytes[i] = r.Counter(metrics.Label("h2_frame_bytes_read_total", "type", name),
			"wire bytes received (9-byte header included), by frame type")
		m.writtenFrames[i] = r.Counter(metrics.Label("h2_frames_written_total", "type", name),
			"frames sent, by frame type")
		m.writtenBytes[i] = r.Counter(metrics.Label("h2_frame_bytes_written_total", "type", name),
			"wire bytes sent (9-byte header included), by frame type")
	}
	return m
}

// slot maps a frame type to its counter index; extension types share the
// trailing UNKNOWN slot.
func slot(t Type) int {
	if int(t) >= metricTypeSlots-1 {
		return metricTypeSlots - 1
	}
	return int(t)
}

// observe records one frame crossing the wire in the given direction.
func (m *Metrics) observe(sent bool, hdr Header) {
	i := slot(hdr.Type)
	wire := int64(hdr.Length) + HeaderLen
	if sent {
		m.writtenFrames[i].Inc()
		m.writtenBytes[i].Add(wire)
	} else {
		m.readFrames[i].Inc()
		m.readBytes[i].Add(wire)
	}
}

// SetMetrics installs m to count every frame the framer reads or writes and
// every read error. Like SetTrace, it must be called before the framer is in
// use — there is no lock on the hook. A nil m detaches.
func (fr *Framer) SetMetrics(m *Metrics) {
	fr.metrics = m
}
