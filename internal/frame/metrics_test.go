package frame

import (
	"bytes"
	"io"
	"testing"

	"h2scope/internal/metrics"
)

func counterValue(t *testing.T, r *metrics.Registry, name string) int64 {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

func TestFramerMetricsCountsBothDirections(t *testing.T) {
	r := metrics.NewRegistry()
	m := NewMetrics(r)

	var wire bytes.Buffer
	w := NewFramer(&wire, nil)
	w.SetMetrics(m)
	if err := w.WriteSettings(Setting{ID: SettingInitialWindowSize, Val: 1}); err != nil {
		t.Fatalf("WriteSettings: %v", err)
	}
	if err := w.WritePing(false, [8]byte{1, 2, 3}); err != nil {
		t.Fatalf("WritePing: %v", err)
	}
	if err := w.WriteData(1, true, []byte("hello")); err != nil {
		t.Fatalf("WriteData: %v", err)
	}

	rd := NewFramer(io.Discard, bytes.NewReader(wire.Bytes()))
	rd.SetMetrics(m)
	for i := 0; i < 3; i++ {
		if _, err := rd.ReadFrame(); err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
	}
	if _, err := rd.ReadFrame(); err != io.EOF {
		t.Fatalf("final ReadFrame = %v, want io.EOF", err)
	}

	checks := []struct {
		name string
		want int64
	}{
		{metrics.Label("h2_frames_written_total", "type", "SETTINGS"), 1},
		{metrics.Label("h2_frames_written_total", "type", "PING"), 1},
		{metrics.Label("h2_frames_written_total", "type", "DATA"), 1},
		{metrics.Label("h2_frames_read_total", "type", "SETTINGS"), 1},
		{metrics.Label("h2_frames_read_total", "type", "PING"), 1},
		{metrics.Label("h2_frames_read_total", "type", "DATA"), 1},
		{metrics.Label("h2_frame_bytes_written_total", "type", "PING"), HeaderLen + 8},
		{metrics.Label("h2_frame_bytes_read_total", "type", "PING"), HeaderLen + 8},
		{metrics.Label("h2_frame_bytes_read_total", "type", "DATA"), HeaderLen + 5},
		{"h2_framer_read_errors_total", 0}, // clean EOF is not an error
	}
	for _, c := range checks {
		if got := counterValue(t, r, c.name); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestFramerMetricsReadErrors(t *testing.T) {
	r := metrics.NewRegistry()
	m := NewMetrics(r)
	errsName := "h2_framer_read_errors_total"

	// Torn header: 4 of 9 bytes then EOF.
	rd := NewFramer(io.Discard, bytes.NewReader([]byte{0, 0, 1, 0}))
	rd.SetMetrics(m)
	if _, err := rd.ReadFrame(); err == nil {
		t.Fatal("torn header should fail")
	}
	if got := counterValue(t, r, errsName); got != 1 {
		t.Fatalf("after torn header: errors = %d, want 1", got)
	}

	// Short payload: header promises 5 bytes, stream has 2.
	var wire bytes.Buffer
	wire.Write([]byte{0, 0, 5, byte(TypeData), 0, 0, 0, 0, 1, 'h', 'i'})
	rd = NewFramer(io.Discard, bytes.NewReader(wire.Bytes()))
	rd.SetMetrics(m)
	if _, err := rd.ReadFrame(); err == nil {
		t.Fatal("short payload should fail")
	}
	if got := counterValue(t, r, errsName); got != 2 {
		t.Fatalf("after short payload: errors = %d, want 2", got)
	}

	// Strict-mode protocol violation: DATA on stream 0.
	wire.Reset()
	w := NewFramer(&wire, nil)
	if err := w.WriteData(0, false, []byte("x")); err != nil {
		t.Fatalf("WriteData: %v", err)
	}
	rd = NewFramer(io.Discard, bytes.NewReader(wire.Bytes()))
	rd.SetMetrics(m)
	if _, err := rd.ReadFrame(); err == nil {
		t.Fatal("strict framer should reject DATA on stream 0")
	}
	if got := counterValue(t, r, errsName); got != 3 {
		t.Fatalf("after protocol violation: errors = %d, want 3", got)
	}

	// The same violation in lenient mode is not an error.
	rd = NewFramer(io.Discard, bytes.NewReader(wire.Bytes()))
	rd.Strict = false
	rd.SetMetrics(m)
	if _, err := rd.ReadFrame(); err != nil {
		t.Fatalf("lenient ReadFrame: %v", err)
	}
	if got := counterValue(t, r, errsName); got != 3 {
		t.Fatalf("lenient mode bumped errors: %d, want 3", got)
	}
}

func TestFramerMetricsUnknownTypeSlot(t *testing.T) {
	r := metrics.NewRegistry()
	m := NewMetrics(r)
	var wire bytes.Buffer
	w := NewFramer(&wire, nil)
	w.SetMetrics(m)
	if err := w.WriteRawFrame(Type(0xfb), 0, 1, []byte{9}); err != nil {
		t.Fatalf("WriteRawFrame: %v", err)
	}
	name := metrics.Label("h2_frames_written_total", "type", "UNKNOWN")
	if got := counterValue(t, r, name); got != 1 {
		t.Fatalf("%s = %d, want 1", name, got)
	}
}

// BenchmarkFrameIOInstrumented measures the per-frame cost of metrics
// accounting on a write+read round trip (the CI benchmark-trajectory job
// tracks it alongside the raw counter/histogram numbers).
func BenchmarkFrameIOInstrumented(b *testing.B) {
	r := metrics.NewRegistry()
	m := NewMetrics(r)
	payload := bytes.Repeat([]byte{'x'}, 1024)
	var wire bytes.Buffer
	w := NewFramer(&wire, nil)
	w.SetMetrics(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire.Reset()
		if err := w.WriteData(1, false, payload); err != nil {
			b.Fatal(err)
		}
		rd := NewFramer(io.Discard, bytes.NewReader(wire.Bytes()))
		rd.SetMetrics(m)
		if _, err := rd.ReadFrame(); err != nil {
			b.Fatal(err)
		}
	}
}
