package frame

import (
	"bytes"
	"io"
	"testing"
)

// benchStream encodes count DATA frames of size bytes each and returns the
// wire bytes plus the total payload volume.
func benchStream(tb testing.TB, count, size int) ([]byte, int64) {
	tb.Helper()
	var buf bytes.Buffer
	w := NewFramer(&buf, nil)
	payload := bytes.Repeat([]byte{'x'}, size)
	for i := 0; i < count; i++ {
		if err := w.WriteData(uint32(2*i+1), i == count-1, payload); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes(), int64(count * size)
}

// countingWriter counts Write calls — each call models one syscall on a real
// connection, which is exactly what coalescing is meant to reduce.
type countingWriter struct {
	writes int
	bytes  int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	w.bytes += len(p)
	return len(p), nil
}

func BenchmarkFrameIO(b *testing.B) {
	const frames, size = 16, 1024

	b.Run("ReadFrame", func(b *testing.B) {
		wire, vol := benchStream(b, frames, size)
		rd := bytes.NewReader(wire)
		fr := NewFramer(nil, rd)
		b.SetBytes(vol)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset(wire)
			for j := 0; j < frames; j++ {
				if _, err := fr.ReadFrame(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("WriteData", func(b *testing.B) {
		fr := NewFramer(io.Discard, nil)
		payload := bytes.Repeat([]byte{'x'}, size)
		b.SetBytes(int64(frames * size))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < frames; j++ {
				if err := fr.WriteData(1, false, payload); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("WriteDataCoalesced", func(b *testing.B) {
		fr := NewFramer(io.Discard, nil)
		fr.SetWriteBuffering(0)
		payload := bytes.Repeat([]byte{'x'}, size)
		b.SetBytes(int64(frames * size))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < frames; j++ {
				if err := fr.WriteData(1, false, payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := fr.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestHotPathAllocs pins the zero-allocation contract for the frame hot
// paths: steady-state ReadFrame and WriteData must not allocate. The HPACK
// half of the contract lives in internal/hpack's TestHotPathAllocs.
func TestHotPathAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is skipped in -short mode")
	}
	const frames, size = 16, 1024

	t.Run("ReadFrame", func(t *testing.T) {
		wire, _ := benchStream(t, frames, size)
		rd := bytes.NewReader(wire)
		fr := NewFramer(nil, rd)
		readAll := func() {
			rd.Reset(wire)
			for j := 0; j < frames; j++ {
				if _, err := fr.ReadFrame(); err != nil {
					t.Fatal(err)
				}
			}
		}
		readAll() // warm the recycled buffer and scratch frame structs
		if n := testing.AllocsPerRun(200, readAll); n != 0 {
			t.Errorf("steady-state ReadFrame allocates %.1f times per %d frames, want 0", n, frames)
		}
	})

	t.Run("WriteData", func(t *testing.T) {
		fr := NewFramer(io.Discard, nil)
		payload := bytes.Repeat([]byte{'x'}, size)
		write := func() {
			if err := fr.WriteData(1, false, payload); err != nil {
				t.Fatal(err)
			}
		}
		write() // size the write buffer once
		if n := testing.AllocsPerRun(200, write); n != 0 {
			t.Errorf("steady-state WriteData allocates %.1f times per frame, want 0", n)
		}
	})

	t.Run("WriteDataCoalesced", func(t *testing.T) {
		fr := NewFramer(io.Discard, nil)
		fr.SetWriteBuffering(0)
		payload := bytes.Repeat([]byte{'x'}, size)
		burst := func() {
			for j := 0; j < frames; j++ {
				if err := fr.WriteData(1, false, payload); err != nil {
					t.Fatal(err)
				}
			}
			if err := fr.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		burst()
		if n := testing.AllocsPerRun(200, burst); n != 0 {
			t.Errorf("steady-state coalesced burst allocates %.1f times per %d frames, want 0", n, frames)
		}
	})
}

// TestWriteCoalescing asserts the syscall-reduction claim directly: with
// buffering on, a burst of frames reaches the writer as a single Write call
// on Flush, and the coalesced bytes decode identically to per-frame writes.
func TestWriteCoalescing(t *testing.T) {
	var cw countingWriter
	fr := NewFramer(&cw, nil)
	fr.SetWriteBuffering(0)

	const frames = 10
	payload := []byte("coalesce me")
	for i := 0; i < frames; i++ {
		if err := fr.WriteData(uint32(2*i+1), false, payload); err != nil {
			t.Fatal(err)
		}
	}
	if cw.writes != 0 {
		t.Fatalf("buffered framer issued %d writes before Flush, want 0", cw.writes)
	}
	if err := fr.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 1 {
		t.Fatalf("burst of %d frames reached writer in %d writes, want 1", frames, cw.writes)
	}
	wantBytes := frames * (HeaderLen + len(payload))
	if cw.bytes != wantBytes {
		t.Fatalf("coalesced write carried %d bytes, want %d", cw.bytes, wantBytes)
	}
	// Flushing an empty buffer must not touch the writer.
	if err := fr.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 1 {
		t.Fatalf("empty Flush reached the writer (writes = %d)", cw.writes)
	}
}

// TestUnbufferedWritesPerFrame pins the backward-compatible default: without
// SetWriteBuffering every frame is its own Write call.
func TestUnbufferedWritesPerFrame(t *testing.T) {
	var cw countingWriter
	fr := NewFramer(&cw, nil)
	for i := 0; i < 3; i++ {
		if err := fr.WriteData(1, false, []byte("abc")); err != nil {
			t.Fatal(err)
		}
	}
	if cw.writes != 3 {
		t.Fatalf("unbuffered framer issued %d writes for 3 frames, want 3", cw.writes)
	}
}

// TestAutoFlushAtThreshold proves a buffered framer bounds its memory: once
// the pending buffer crosses the threshold it flushes on its own, so a
// caller that never calls Flush still makes progress.
func TestAutoFlushAtThreshold(t *testing.T) {
	var cw countingWriter
	fr := NewFramer(&cw, nil)
	fr.SetWriteBuffering(64)

	payload := bytes.Repeat([]byte{'y'}, 40) // 49 bytes per frame incl. header
	if err := fr.WriteData(1, false, payload); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 0 {
		t.Fatalf("framer flushed below threshold (writes = %d)", cw.writes)
	}
	if err := fr.WriteData(1, false, payload); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 1 {
		t.Fatalf("framer crossed threshold without auto-flush (writes = %d)", cw.writes)
	}
	if cw.bytes != 2*(HeaderLen+len(payload)) {
		t.Fatalf("auto-flush wrote %d bytes, want both frames", cw.bytes)
	}
}

// TestCoalescedBytesDecode round-trips a mixed coalesced burst to prove the
// length back-patching in endWrite produces a valid wire image.
func TestCoalescedBytesDecode(t *testing.T) {
	var buf bytes.Buffer
	fr := NewFramer(&buf, nil)
	fr.SetWriteBuffering(0)
	if err := fr.WriteSettings(Setting{ID: SettingInitialWindowSize, Val: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteHeaders(HeadersParams{StreamID: 1, Fragment: []byte{0x82}, EndHeaders: true}); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteData(1, true, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := fr.Flush(); err != nil {
		t.Fatal(err)
	}

	rd := NewFramer(nil, &buf)
	wantTypes := []Type{TypeSettings, TypeHeaders, TypeData}
	for i, want := range wantTypes {
		f, err := rd.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Header().Type != want {
			t.Fatalf("frame %d type = %v, want %v", i, f.Header().Type, want)
		}
	}
	if d, err := rd.ReadFrame(); err != io.EOF {
		t.Fatalf("trailing frame %v, err %v; want EOF", d, err)
	}
}
