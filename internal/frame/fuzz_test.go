package frame

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeeds returns one valid wire encoding of every frame type (plus an
// unknown type), written by the package's own write path so the corpus stays
// in sync with the encoder.
func fuzzSeeds() [][]byte {
	frames := []func(fr *Framer) error{
		func(fr *Framer) error { return fr.WriteData(1, true, []byte("hello, world")) },
		func(fr *Framer) error {
			return fr.WriteHeaders(HeadersParams{
				StreamID:   3,
				Fragment:   []byte{0x82, 0x86, 0x84},
				EndStream:  true,
				EndHeaders: true,
				Priority:   PriorityParam{StreamDep: 1, Exclusive: true, Weight: 200},
			})
		},
		func(fr *Framer) error { return fr.WritePriority(5, PriorityParam{StreamDep: 3, Weight: 15}) },
		func(fr *Framer) error { return fr.WriteRSTStream(1, ErrCodeCancel) },
		func(fr *Framer) error {
			return fr.WriteSettings(
				Setting{SettingInitialWindowSize, 65535},
				Setting{SettingMaxFrameSize, DefaultMaxFrameSize})
		},
		func(fr *Framer) error { return fr.WriteSettingsAck() },
		func(fr *Framer) error { return fr.WritePushPromise(1, 2, true, []byte{0x82}) },
		func(fr *Framer) error { return fr.WritePing(false, [8]byte{1, 2, 3, 4, 5, 6, 7, 8}) },
		func(fr *Framer) error { return fr.WriteGoAway(7, ErrCodeProtocol, []byte("bye")) },
		func(fr *Framer) error { return fr.WriteWindowUpdate(0, 1<<16) },
		func(fr *Framer) error { return fr.WriteContinuation(3, true, []byte{0x84}) },
		func(fr *Framer) error { return fr.WriteRawFrame(Type(0xfa), 0x55, 9, []byte{0xde, 0xad}) },
	}
	seeds := make([][]byte, 0, len(frames)+1)
	var all bytes.Buffer
	for _, write := range frames {
		var buf bytes.Buffer
		if err := write(NewFramer(&buf, nil)); err != nil {
			panic(err)
		}
		seeds = append(seeds, buf.Bytes())
		all.Write(buf.Bytes())
	}
	// One seed with every frame back to back exercises the resync path.
	return append(seeds, all.Bytes())
}

// FuzzReadFrame feeds arbitrary bytes to the frame reader. ReadFrame must
// never panic, and every frame it does accept must survive a semantic
// decode -> encode -> decode round trip (the write path normalizes padding
// away, so raw bytes are not compared).
func FuzzReadFrame(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x01, 0x00, 0x08, 0x00, 0x00, 0x00, 0x01, 0x05}) // padded DATA, padding > payload
	f.Add([]byte{0xff, 0xff, 0xff, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00})       // 16 MiB SETTINGS claim

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFramer(io.Discard, bytes.NewReader(data))
		fr.SetMaxReadFrameSize(DefaultMaxFrameSize) // bound per-frame allocation
		for {
			frm, err := fr.ReadFrame()
			if err != nil {
				// Protocol errors consume the whole frame, so the reader
				// stays aligned and can continue; anything else ends the
				// stream.
				var connErr ConnError
				var streamErr StreamError
				if errors.As(err, &connErr) || errors.As(err, &streamErr) {
					continue
				}
				return
			}
			checkRoundTrip(t, frm)
		}
	})
}

// checkRoundTrip re-encodes frm with the typed write path, reads it back, and
// compares the fields the write path preserves. Padding and unused flag bits
// are intentionally dropped by the writers, so the comparison is semantic.
func checkRoundTrip(t *testing.T, frm Frame) {
	t.Helper()
	var buf bytes.Buffer
	fw := NewFramer(&buf, nil)
	var err error
	switch f := frm.(type) {
	case *DataFrame:
		err = fw.WriteData(f.Header().StreamID, f.StreamEnded(), f.Data)
	case *HeadersFrame:
		err = fw.WriteHeaders(HeadersParams{
			StreamID:   f.Header().StreamID,
			Fragment:   f.Fragment,
			EndStream:  f.StreamEnded(),
			EndHeaders: f.HeadersEnded(),
			Priority:   f.Priority,
		})
	case *PriorityFrame:
		err = fw.WritePriority(f.Header().StreamID, f.Priority)
	case *RSTStreamFrame:
		err = fw.WriteRSTStream(f.Header().StreamID, f.Code)
	case *SettingsFrame:
		if f.IsAck() {
			err = fw.WriteSettingsAck()
		} else {
			err = fw.WriteSettings(f.Settings...)
		}
	case *PushPromiseFrame:
		err = fw.WritePushPromise(f.Header().StreamID, f.PromiseID, f.HeadersEnded(), f.Fragment)
	case *PingFrame:
		err = fw.WritePing(f.IsAck(), f.Data)
	case *GoAwayFrame:
		err = fw.WriteGoAway(f.LastStreamID, f.Code, f.DebugData)
	case *WindowUpdateFrame:
		err = fw.WriteWindowUpdate(f.Header().StreamID, f.Increment)
	case *ContinuationFrame:
		err = fw.WriteContinuation(f.Header().StreamID, f.HeadersEnded(), f.Fragment)
	case *UnknownFrame:
		err = fw.WriteRawFrame(f.Header().Type, f.Header().Flags, f.Header().StreamID, f.Payload)
	default:
		t.Fatalf("ReadFrame returned unexpected frame type %T", frm)
	}
	if err != nil {
		t.Fatalf("re-encoding %v: %v", frm.Header(), err)
	}

	got, err := NewFramer(io.Discard, &buf).ReadFrame()
	if err != nil {
		t.Fatalf("re-reading %v: %v", frm.Header(), err)
	}
	compareFrames(t, frm, got)
}

func compareFrames(t *testing.T, want, got Frame) {
	t.Helper()
	if wh, gh := want.Header(), got.Header(); wh.Type != gh.Type || wh.StreamID != gh.StreamID {
		t.Fatalf("round trip changed identity: %v -> %v", wh, gh)
	}
	switch w := want.(type) {
	case *DataFrame:
		g := got.(*DataFrame)
		if !bytes.Equal(w.Data, g.Data) || w.StreamEnded() != g.StreamEnded() {
			t.Fatalf("DATA round trip: %+v -> %+v", w, g)
		}
	case *HeadersFrame:
		g := got.(*HeadersFrame)
		if !bytes.Equal(w.Fragment, g.Fragment) || w.Priority != g.Priority ||
			w.StreamEnded() != g.StreamEnded() || w.HeadersEnded() != g.HeadersEnded() {
			t.Fatalf("HEADERS round trip: %+v -> %+v", w, g)
		}
	case *PriorityFrame:
		g := got.(*PriorityFrame)
		if w.Priority != g.Priority {
			t.Fatalf("PRIORITY round trip: %+v -> %+v", w.Priority, g.Priority)
		}
	case *RSTStreamFrame:
		g := got.(*RSTStreamFrame)
		if w.Code != g.Code {
			t.Fatalf("RST_STREAM round trip: %v -> %v", w.Code, g.Code)
		}
	case *SettingsFrame:
		g := got.(*SettingsFrame)
		if w.IsAck() != g.IsAck() || len(w.Settings) != len(g.Settings) {
			t.Fatalf("SETTINGS round trip: %+v -> %+v", w, g)
		}
		for i := range w.Settings {
			if w.Settings[i] != g.Settings[i] {
				t.Fatalf("SETTINGS[%d] round trip: %v -> %v", i, w.Settings[i], g.Settings[i])
			}
		}
	case *PushPromiseFrame:
		g := got.(*PushPromiseFrame)
		if w.PromiseID != g.PromiseID || !bytes.Equal(w.Fragment, g.Fragment) ||
			w.HeadersEnded() != g.HeadersEnded() {
			t.Fatalf("PUSH_PROMISE round trip: %+v -> %+v", w, g)
		}
	case *PingFrame:
		g := got.(*PingFrame)
		if w.Data != g.Data || w.IsAck() != g.IsAck() {
			t.Fatalf("PING round trip: %+v -> %+v", w, g)
		}
	case *GoAwayFrame:
		g := got.(*GoAwayFrame)
		if w.LastStreamID != g.LastStreamID || w.Code != g.Code || !bytes.Equal(w.DebugData, g.DebugData) {
			t.Fatalf("GOAWAY round trip: %+v -> %+v", w, g)
		}
	case *WindowUpdateFrame:
		g := got.(*WindowUpdateFrame)
		if w.Increment != g.Increment {
			t.Fatalf("WINDOW_UPDATE round trip: %d -> %d", w.Increment, g.Increment)
		}
	case *ContinuationFrame:
		g := got.(*ContinuationFrame)
		if !bytes.Equal(w.Fragment, g.Fragment) || w.HeadersEnded() != g.HeadersEnded() {
			t.Fatalf("CONTINUATION round trip: %+v -> %+v", w, g)
		}
	case *UnknownFrame:
		g := got.(*UnknownFrame)
		if w.Header() != g.Header() || !bytes.Equal(w.Payload, g.Payload) {
			t.Fatalf("unknown-frame round trip: %v -> %v", w.Header(), g.Header())
		}
	}
}
