package flowcontrol

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestConsumeAndIncrease(t *testing.T) {
	w := New(DefaultWindow)
	if w.Available() != 65535 {
		t.Fatalf("Available() = %d, want 65535", w.Available())
	}
	if err := w.Consume(65535); err != nil {
		t.Fatalf("Consume(65535): %v", err)
	}
	if w.Available() != 0 {
		t.Fatalf("Available() = %d, want 0", w.Available())
	}
	if err := w.Consume(1); !errors.Is(err, ErrWindowUnderflow) {
		t.Fatalf("Consume past window = %v, want ErrWindowUnderflow", err)
	}
	if err := w.Increase(1000); err != nil {
		t.Fatalf("Increase: %v", err)
	}
	if w.Available() != 1000 {
		t.Fatalf("Available() = %d, want 1000", w.Available())
	}
}

func TestZeroIncrementRejected(t *testing.T) {
	w := New(10)
	if err := w.Increase(0); !errors.Is(err, ErrZeroIncrement) {
		t.Fatalf("Increase(0) = %v, want ErrZeroIncrement", err)
	}
}

func TestOverflowRejected(t *testing.T) {
	// The paper's "large window update" probe: two increments whose sum
	// exceeds 2^31-1 must fail on the second.
	w := New(DefaultWindow)
	if err := w.Increase(MaxWindow - DefaultWindow); err != nil {
		t.Fatalf("Increase to max: %v", err)
	}
	if err := w.Increase(1); !errors.Is(err, ErrWindowOverflow) {
		t.Fatalf("Increase past max = %v, want ErrWindowOverflow", err)
	}
	if w.Available() != MaxWindow {
		t.Fatalf("Available() = %d, want %d (failed increase must not apply)", w.Available(), int64(MaxWindow))
	}
}

func TestAdjustCanGoNegative(t *testing.T) {
	w := New(65535)
	if err := w.Consume(60000); err != nil {
		t.Fatal(err)
	}
	// Peer shrinks SETTINGS_INITIAL_WINDOW_SIZE from 65535 to 0.
	if err := w.Adjust(-65535); err != nil {
		t.Fatalf("Adjust: %v", err)
	}
	if w.Available() != -60000+65535-65535 {
		t.Fatalf("Available() = %d, want %d", w.Available(), -60000)
	}
	if got := w.ClampTake(100); got != 0 {
		t.Fatalf("ClampTake on negative window = %d, want 0", got)
	}
	w2 := New(1)
	if err := w2.Adjust(MaxWindow); !errors.Is(err, ErrWindowOverflow) {
		t.Fatalf("Adjust overflow = %v, want ErrWindowOverflow", err)
	}
}

func TestClampTake(t *testing.T) {
	w := New(100)
	if got := w.ClampTake(250); got != 100 {
		t.Errorf("ClampTake(250) = %d, want 100", got)
	}
	if got := w.ClampTake(50); got != 50 {
		t.Errorf("ClampTake(50) = %d, want 50", got)
	}
	if err := w.Consume(100); err != nil {
		t.Fatal(err)
	}
	if got := w.ClampTake(1); got != 0 {
		t.Errorf("ClampTake on empty window = %d, want 0", got)
	}
}

func TestNegativeConsumeRejected(t *testing.T) {
	w := New(10)
	if err := w.Consume(-1); err == nil {
		t.Error("Consume(-1) accepted")
	}
}

func TestWindowNeverExceedsMaxProperty(t *testing.T) {
	prop := func(ops []int32) bool {
		w := New(DefaultWindow)
		for _, op := range ops {
			if op >= 0 {
				_ = w.Increase(uint32(op))
			} else {
				_ = w.Consume(-int64(op) % (w.Available() + 1))
			}
			if w.Available() > MaxWindow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
