// Package flowcontrol implements HTTP/2 flow-control window accounting
// (RFC 7540 sections 5.2 and 6.9).
//
// A Window tracks one direction of one flow-control scope (a stream or the
// connection). Both the client connection and the server maintain a pair of
// windows per scope. The package validates the two boundary conditions the
// paper probes deliberately: zero-increment WINDOW_UPDATE frames and window
// overflow past 2^31-1.
package flowcontrol

import (
	"errors"
	"fmt"
)

// MaxWindow is the largest legal flow-control window, 2^31-1 octets.
const MaxWindow = 1<<31 - 1

// DefaultWindow is the initial window size for streams and the connection.
const DefaultWindow = 1<<16 - 1 // 65,535

// ErrZeroIncrement reports a WINDOW_UPDATE with a zero increment, which
// RFC 7540 section 6.9 defines as a PROTOCOL_ERROR.
var ErrZeroIncrement = errors.New("flowcontrol: zero window increment")

// ErrWindowOverflow reports an increment that would push the window past
// 2^31-1, a FLOW_CONTROL_ERROR per RFC 7540 section 6.9.1.
var ErrWindowOverflow = errors.New("flowcontrol: window exceeds 2^31-1")

// ErrWindowUnderflow reports consuming more octets than the window allows.
var ErrWindowUnderflow = errors.New("flowcontrol: consumed past window")

// Window is one directional flow-control window. The zero value is not
// useful; construct with New. Window performs no locking: the owner
// serializes access (both our server and client touch windows only from the
// connection's serialized write path).
type Window struct {
	// avail may be negative: lowering SETTINGS_INITIAL_WINDOW_SIZE below the
	// amount already consumed legally drives a window negative (RFC 7540
	// section 6.9.2).
	avail int64
}

// New returns a window with the given initial size.
func New(initial int32) *Window {
	return &Window{avail: int64(initial)}
}

// Available returns the current window size in octets (may be negative).
func (w *Window) Available() int64 { return w.avail }

// Reset reinitializes the window to n octets, discarding all accumulated
// state. Pooled per-stream windows are re-armed with it instead of being
// reallocated.
func (w *Window) Reset(n int64) { w.avail = n }

// Consume removes n octets from the window. It fails with
// ErrWindowUnderflow if n exceeds the available window; the caller decides
// whether that is a FLOW_CONTROL_ERROR (receiving overlong DATA) or a
// scheduling bug.
func (w *Window) Consume(n int64) error {
	if n < 0 {
		return fmt.Errorf("flowcontrol: negative consume %d", n)
	}
	if n > w.avail {
		return fmt.Errorf("%w: consume %d with %d available", ErrWindowUnderflow, n, w.avail)
	}
	w.avail -= n
	return nil
}

// Increase grows the window by a WINDOW_UPDATE increment, validating the
// RFC 7540 boundary conditions.
func (w *Window) Increase(n uint32) error {
	if n == 0 {
		return ErrZeroIncrement
	}
	if w.avail+int64(n) > MaxWindow {
		return fmt.Errorf("%w: %d + %d", ErrWindowOverflow, w.avail, n)
	}
	w.avail += int64(n)
	return nil
}

// Adjust applies a SETTINGS_INITIAL_WINDOW_SIZE delta to an existing stream
// window (RFC 7540 section 6.9.2). The result may be negative; a result
// above 2^31-1 is an error.
func (w *Window) Adjust(delta int64) error {
	if w.avail+delta > MaxWindow {
		return fmt.Errorf("%w: adjust by %d", ErrWindowOverflow, delta)
	}
	w.avail += delta
	return nil
}

// ClampTake returns how many of the n octets the caller wants to send are
// permitted by the window, without consuming them. Negative windows permit
// nothing.
func (w *Window) ClampTake(n int64) int64 {
	if w.avail <= 0 {
		return 0
	}
	if n > w.avail {
		return w.avail
	}
	return n
}
