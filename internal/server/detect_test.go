package server

// In-package tests for the attack detector's sliding-window scorer: the
// signal unit tests, an exhaustive equivalence check against a naive
// reference window, a fuzzer over random trace event sequences, and the
// detector-overhead benchmark. These live inside package server because
// they drive connStats and the Detector scoring path directly.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/metrics"
	"h2scope/internal/netsim"
	"h2scope/internal/trace"
)

// statsBase is an arbitrary fixed epoch: connStats buckets are indexed by
// absolute time, so fixed timestamps make every run land events in the
// same buckets.
var statsBase = time.Unix(1_700_000_000, 0)

func recvEv(at time.Time, ft frame.Type, stream uint32, flags frame.Flags, length int) trace.Event {
	return trace.Event{At: at, Kind: trace.KindFrameRecv, FrameType: ft, StreamID: stream, Flags: flags, Length: length}
}

func sentEv(at time.Time, ft frame.Type, stream uint32, flags frame.Flags, length int) trace.Event {
	return trace.Event{At: at, Kind: trace.KindFrameSent, FrameType: ft, StreamID: stream, Flags: flags, Length: length}
}

// feed replays events into a fresh default-threshold window (1s, 8 buckets)
// anchored at statsBase.
func feed(events []trace.Event) *connStats {
	th := DefaultThresholds()
	st := newConnStats(time.Second, 8, th.TinyDataBytes, statsBase)
	for i := range events {
		st.observe(&events[i])
	}
	return st
}

func TestConnStatsSignals(t *testing.T) {
	th := DefaultThresholds()
	spread := func(n int, ft frame.Type, flags frame.Flags, length int, kind trace.Kind) []trace.Event {
		evs := make([]trace.Event, 0, n)
		for i := 0; i < n; i++ {
			at := statsBase.Add(time.Duration(i) * time.Second / time.Duration(n))
			ev := trace.Event{At: at, Kind: kind, FrameType: ft, StreamID: uint32(2*i + 1), Flags: flags, Length: length}
			evs = append(evs, ev)
		}
		return evs
	}
	cases := []struct {
		name   string
		events []trace.Event
		at     time.Time
		want   AttackKind
	}{
		{
			// 400 opens + 400 resets in one window: header churn fires.
			name: "rapid-reset",
			events: func() []trace.Event {
				var evs []trace.Event
				for i := 0; i < 400; i++ {
					at := statsBase.Add(time.Duration(i) * time.Second / 400)
					id := uint32(2*i + 1)
					evs = append(evs,
						recvEv(at, frame.TypeHeaders, id, frame.FlagEndHeaders|frame.FlagEndStream, 10),
						recvEv(at, frame.TypeRSTStream, id, 0, 4))
				}
				return evs
			}(),
			at:   statsBase.Add(time.Second),
			want: AttackRapidReset,
		},
		{
			name:   "settings-flood",
			events: spread(60, frame.TypeSettings, 0, 6, trace.KindFrameRecv),
			at:     statsBase.Add(time.Second),
			want:   AttackSettingsFlood,
		},
		{
			// CONTINUATION count fires before the byte asymmetry does: 40
			// frames of 100 bytes is 4000 header bytes, under the 8KiB bar.
			name:   "continuation-flood",
			events: spread(40, frame.TypeContinuation, 0, 100, trace.KindFrameRecv),
			at:     statsBase.Add(time.Second),
			want:   AttackContinuationFlood,
		},
		{
			// One 16KB header block, nothing sent back: byte asymmetry.
			name: "hpack-bomb",
			events: []trace.Event{
				recvEv(statsBase, frame.TypeHeaders, 1, frame.FlagEndHeaders, 16<<10),
			},
			at:   statsBase.Add(100 * time.Millisecond),
			want: AttackHPACKBomb,
		},
		{
			// 5KB alone is under the 8KiB bar, but a decode error halves it.
			name: "hpack-bomb-decode-error",
			events: []trace.Event{
				recvEv(statsBase, frame.TypeHeaders, 1, frame.FlagEndHeaders, 5<<10),
				{At: statsBase, Kind: trace.KindError, Detail: "hpack: dynamic table reference out of range"},
			},
			at:   statsBase.Add(100 * time.Millisecond),
			want: AttackHPACKBomb,
		},
		{
			name:   "slow-drip",
			events: spread(15, frame.TypeData, 0, 1, trace.KindFrameRecv),
			at:     statsBase.Add(time.Second),
			want:   AttackSlowDrip,
		},
		{
			// An open request and three seconds of zero progress.
			name: "zero-window-starvation",
			events: []trace.Event{
				recvEv(statsBase, frame.TypeHeaders, 1, frame.FlagEndHeaders|frame.FlagEndStream, 50),
			},
			at:   statsBase.Add(3 * time.Second),
			want: AttackZeroWindowStarve,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			st := feed(tc.events)
			score, kind := st.score(tc.at, &th)
			if score < 1 {
				t.Fatalf("score = %v, want >= 1", score)
			}
			if kind != tc.want {
				t.Fatalf("kind = %s, want %s", kind, tc.want)
			}
		})
	}
}

// TestConnStatsBenignStaysQuiet covers the under-threshold and gated sides
// of each signal: traffic shaped like one busy-but-honest connection must
// never reach a score of 1.
func TestConnStatsBenignStaysQuiet(t *testing.T) {
	th := DefaultThresholds()
	var evs []trace.Event
	for i := 0; i < 30; i++ {
		at := statsBase.Add(time.Duration(i) * 30 * time.Millisecond)
		id := uint32(2*i + 1)
		evs = append(evs,
			recvEv(at, frame.TypeHeaders, id, frame.FlagEndHeaders|frame.FlagEndStream, 60),
			sentEv(at.Add(time.Millisecond), frame.TypeHeaders, id, frame.FlagEndHeaders, 40),
			sentEv(at.Add(2*time.Millisecond), frame.TypeData, id, frame.FlagEndStream, 1024))
	}
	// A few cancellations, ACKed SETTINGS, and END_STREAM tiny DATA — all
	// shapes the gates must keep below their signals.
	evs = append(evs,
		recvEv(statsBase.Add(500*time.Millisecond), frame.TypeRSTStream, 3, 0, 4),
		recvEv(statsBase.Add(510*time.Millisecond), frame.TypeRSTStream, 5, 0, 4),
		recvEv(statsBase.Add(520*time.Millisecond), frame.TypeSettings, 0, frame.FlagAck, 0),
		recvEv(statsBase.Add(530*time.Millisecond), frame.TypeData, 7, frame.FlagEndStream, 1),
		recvEv(statsBase.Add(540*time.Millisecond), frame.TypeWindowUpdate, 0, 0, 4))
	st := feed(evs)
	for _, at := range []time.Time{
		statsBase.Add(900 * time.Millisecond),
		statsBase.Add(time.Second),
		statsBase.Add(2 * time.Second),
	} {
		if score, kind := st.score(at, &th); score >= 1 {
			t.Fatalf("benign traffic scored %v as %s at +%v", score, kind, at.Sub(statsBase))
		}
	}
}

// TestConnStatsProgressResetsStarvation pins the progress events: DATA
// sent, WINDOW_UPDATE received, and stream completion each restart the
// starvation fuse.
func TestConnStatsProgressResetsStarvation(t *testing.T) {
	th := DefaultThresholds()
	open := recvEv(statsBase, frame.TypeHeaders, 1, frame.FlagEndHeaders|frame.FlagEndStream, 50)
	progress := []trace.Event{
		sentEv(statsBase.Add(2500*time.Millisecond), frame.TypeData, 1, 0, 100),
		recvEv(statsBase.Add(2500*time.Millisecond), frame.TypeWindowUpdate, 0, 0, 4),
	}
	for _, ev := range progress {
		st := feed([]trace.Event{open, ev})
		if score, kind := st.score(statsBase.Add(3*time.Second), &th); score >= 1 {
			t.Fatalf("score = %v (%s) after progress event %v, want < 1", score, kind, ev.FrameType)
		}
	}
	// Completing the stream removes the open request entirely.
	st := feed([]trace.Event{open, sentEv(statsBase.Add(time.Millisecond), frame.TypeData, 1, frame.FlagEndStream, 100)})
	if score, kind := st.score(statsBase.Add(time.Hour), &th); score >= 1 {
		t.Fatalf("score = %v (%s) with no open requests, want < 1", score, kind)
	}
}

// TestConnStatsEvictionMonotone: advancing time without events only ever
// shrinks the window totals, down to zero once the whole window has passed.
func TestConnStatsEvictionMonotone(t *testing.T) {
	var evs []trace.Event
	for i := 0; i < 64; i++ {
		at := statsBase.Add(time.Duration(i) * 15 * time.Millisecond)
		evs = append(evs, recvEv(at, frame.TypeHeaders, uint32(2*i+1), frame.FlagEndHeaders, 100))
	}
	st := feed(evs)
	prev := st.totals(statsBase.Add(time.Second))
	for step := 1; step <= 20; step++ {
		now := statsBase.Add(time.Second + time.Duration(step)*125*time.Millisecond)
		cur := st.totals(now)
		assertNoBucketGrowth(t, prev, cur)
		prev = cur
	}
	if prev != (statBucket{}) {
		t.Fatalf("window not fully evicted: %+v", prev)
	}
}

func assertNoBucketGrowth(t *testing.T, before, after statBucket) {
	t.Helper()
	if after.headersRecv > before.headersRecv || after.rstRecv > before.rstRecv ||
		after.settingsRecv > before.settingsRecv || after.continuationRecv > before.continuationRecv ||
		after.tinyDataRecv > before.tinyDataRecv || after.headerBytesRecv > before.headerBytesRecv ||
		after.dataBytesSent > before.dataBytesSent || after.decodeErrors > before.decodeErrors {
		t.Fatalf("window totals grew without events: %+v -> %+v", before, after)
	}
}

func TestThresholdsForProfile(t *testing.T) {
	if got := ThresholdsForProfile(NginxProfile()).HeaderRate; got != 384 {
		t.Errorf("nginx HeaderRate = %v, want 384 (3x128 advertised streams)", got)
	}
	// Apache's 100-stream limit stays under the 300 floor.
	if got := ThresholdsForProfile(ApacheProfile()).HeaderRate; got != DefaultThresholds().HeaderRate {
		t.Errorf("apache HeaderRate = %v, want default", got)
	}
	if got := ThresholdsForProfile(LiteSpeedProfile()).StarvationTime; got != 2*DefaultThresholds().StarvationTime {
		t.Errorf("litespeed StarvationTime = %v, want doubled (flow-controlled HEADERS)", got)
	}
	p := ApacheProfile()
	p.TinyWindow = TinyWindowSilent
	if got := ThresholdsForProfile(p).TinyDataRate; got != 2*DefaultThresholds().TinyDataRate {
		t.Errorf("tiny-window-silent TinyDataRate = %v, want doubled", got)
	}
}

func TestDetectorNilSafe(t *testing.T) {
	var d *Detector
	d.Stop()
	if got := d.Detections(); got != nil {
		t.Errorf("nil Detections = %v", got)
	}
	if got := d.DetectedTotal(AttackRapidReset); got != 0 {
		t.Errorf("nil DetectedTotal = %d", got)
	}
}

// TestDetectorStopConcurrent pins the Stop race fixed in the lint sweep: the
// old select-on-closed guard let two concurrent Stops both observe the stop
// channel open and both close it, panicking. Every Stop must return (the
// detector goroutine is joined) and none may panic.
func TestDetectorStopConcurrent(t *testing.T) {
	srv := New(ApacheProfile(), DefaultSite("stop.example"))
	srv.Trace = trace.New(64)
	d := srv.StartDetector(DetectorConfig{Thresholds: quietThresholds()}, nil)

	const stoppers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < stoppers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			d.Stop()
		}()
	}
	close(start)
	wg.Wait()
	d.Stop() // and again after the fact: still idempotent
}

// --- equivalence vs a naive reference window ---

// refWindow is the naive reference model: keep every event, and at totals
// time sum only those whose bucket index is within the last `buckets`
// indices of the largest index seen. The production ring must agree with
// this on every prefix of every sequence.
type refWindow struct {
	granule time.Duration
	buckets int64
	max     int64
	events  []trace.Event
}

func newRefWindow(granule time.Duration, buckets int, at time.Time) *refWindow {
	return &refWindow{granule: granule, buckets: int64(buckets), max: at.UnixNano() / int64(granule)}
}

func (r *refWindow) observe(ev trace.Event) {
	if idx := ev.At.UnixNano() / int64(r.granule); idx > r.max {
		r.max = idx
	}
	r.events = append(r.events, ev)
}

func (r *refWindow) totals(now time.Time, tinyBytes int) statBucket {
	if idx := now.UnixNano() / int64(r.granule); idx > r.max {
		r.max = idx
	}
	var t statBucket
	for _, ev := range r.events {
		if ev.At.UnixNano()/int64(r.granule) <= r.max-r.buckets {
			continue
		}
		refFold(&t, ev, tinyBytes)
	}
	return t
}

// refFold restates the event-to-counter semantics independently of
// connStats.observe.
func refFold(t *statBucket, ev trace.Event, tinyBytes int) {
	switch ev.Kind {
	case trace.KindError:
		t.decodeErrors++ // the reference alphabet only uses decode errors
	case trace.KindFrameRecv:
		switch ev.FrameType {
		case frame.TypeHeaders:
			t.headersRecv++
			t.headerBytesRecv += ev.Length
		case frame.TypeContinuation:
			t.continuationRecv++
			t.headerBytesRecv += ev.Length
		case frame.TypeRSTStream:
			t.rstRecv++
		case frame.TypeSettings:
			if !ev.Flags.Has(frame.FlagAck) {
				t.settingsRecv++
			}
		case frame.TypeData:
			if !ev.Flags.Has(frame.FlagEndStream) && ev.Length < tinyBytes {
				t.tinyDataRecv++
			}
		}
	case trace.KindFrameSent:
		if ev.FrameType == frame.TypeData && ev.Length > 0 {
			t.dataBytesSent += ev.Length
		}
	}
}

// TestConnStatsEquivalenceExhaustive replays every sequence of up to three
// symbols from a 16-symbol alphabet (4 frame shapes x 4 time offsets,
// including a full-window jump) through both the production ring and the
// naive reference, comparing totals after every event. A seeded random pass
// then covers longer sequences.
func TestConnStatsEquivalenceExhaustive(t *testing.T) {
	const (
		buckets = 3
		granule = time.Millisecond
		tiny    = 16
	)
	offsets := []time.Duration{0, granule, 2 * granule, 4 * granule}
	shapes := []trace.Event{
		{Kind: trace.KindFrameRecv, FrameType: frame.TypeHeaders, StreamID: 1, Flags: frame.FlagEndHeaders, Length: 10},
		{Kind: trace.KindFrameRecv, FrameType: frame.TypeRSTStream, StreamID: 1, Length: 4},
		{Kind: trace.KindFrameRecv, FrameType: frame.TypeData, StreamID: 1, Length: 1},
		{Kind: trace.KindFrameSent, FrameType: frame.TypeData, StreamID: 1, Length: 37},
	}
	type symbol struct {
		shape int
		off   time.Duration
	}
	var alphabet []symbol
	for s := range shapes {
		for _, off := range offsets {
			alphabet = append(alphabet, symbol{s, off})
		}
	}

	replay := func(t *testing.T, seq []symbol) {
		t.Helper()
		st := newConnStats(time.Duration(buckets)*granule, buckets, tiny, statsBase)
		ref := newRefWindow(granule, buckets, statsBase)
		now := statsBase
		for i, sym := range seq {
			// Offsets accumulate, so sequences mix in-order arrivals,
			// same-bucket repeats, and jumps that evict everything.
			now = now.Add(sym.off)
			ev := shapes[sym.shape]
			ev.At = now
			st.observe(&ev)
			ref.observe(ev)
			got, want := st.totals(now), ref.totals(now, tiny)
			if got != want {
				t.Fatalf("step %d of %v: totals %+v, reference %+v", i, seq, got, want)
			}
		}
		final := now.Add(6 * granule / 2)
		if got, want := st.totals(final), ref.totals(final, tiny); got != want {
			t.Fatalf("final totals for %v: %+v, reference %+v", seq, got, want)
		}
	}

	// Exhaustive over lengths 1..3: 16 + 256 + 4096 sequences.
	var walk func(seq []symbol)
	walk = func(seq []symbol) {
		if len(seq) > 0 {
			replay(t, seq)
		}
		if len(seq) == 3 {
			return
		}
		for _, sym := range alphabet {
			walk(append(seq, sym))
		}
	}
	walk(nil)

	// Seeded random pass over longer sequences.
	rng := rand.New(rand.NewSource(42))
	for n := 0; n < 500; n++ {
		seq := make([]symbol, 12)
		for i := range seq {
			seq[i] = alphabet[rng.Intn(len(alphabet))]
		}
		replay(t, seq)
	}
}

// --- fuzzing ---

// newBareDetector builds a Detector wired for direct, single-goroutine use
// (no trace subscription, no loop, no mitigation targets).
func newBareDetector(th Thresholds) *Detector {
	d := &Detector{
		cfg:       DetectorConfig{Window: 200 * time.Millisecond, Buckets: 4, SweepInterval: 50 * time.Millisecond},
		th:        th,
		actions:   DefaultMitigations(),
		states:    make(map[uint64]*connStats),
		targets:   make(map[uint64]*conn),
		detected:  make(map[AttackKind]*metrics.Counter),
		mitigated: make(map[MitigationAction]*metrics.Counter),
	}
	for _, k := range AttackKinds() {
		d.detected[k] = metrics.NewCounter()
	}
	for _, a := range []MitigationAction{ActionNone, ActionRateLimit, ActionStreamCap, ActionGoAway} {
		d.mitigated[a] = metrics.NewCounter()
	}
	return d
}

// FuzzDetector feeds random trace event sequences through the detector's
// observe/sweep path and the underlying sliding windows, asserting the
// scorer invariants: no panics, no negative scores, detections only at
// score >= 1, and monotone window eviction.
func FuzzDetector(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 1, 0, 3, 10, 1, 3, 0})
	f.Add([]byte{0, 0, 1, 0, 0, 3, 255, 1, 0, 5, 1, 0, 1, 0, 0})
	seed := make([]byte, 0, 200)
	for i := 0; i < 40; i++ {
		seed = append(seed, 3, 1, byte(2*i+1), 1, 4)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		d := newBareDetector(DefaultThresholds())
		now := statsBase
		for len(data) >= 5 {
			rec := data[:5]
			data = data[5:]
			now = now.Add(time.Duration(rec[1]) * time.Millisecond)
			ev := trace.Event{At: now, Conn: uint64(rec[2] % 4)} // conn 0 exercises the ignore path
			switch rec[0] % 8 {
			case 0:
				ev.Kind = trace.KindConnOpen
			case 1:
				ev.Kind = trace.KindConnClose
			case 2:
				ev.Kind = trace.KindError
				ev.Detail = "hpack: fuzzed decode error"
			case 3, 4, 5:
				ev.Kind = trace.KindFrameRecv
				ev.FrameType = frame.Type(rec[3] % 12)
				ev.Flags = frame.Flags(rec[4])
				ev.StreamID = uint32(rec[2])
				ev.Length = int(rec[3]) * 37
			default:
				ev.Kind = trace.KindFrameSent
				ev.FrameType = frame.Type(rec[3] % 12)
				ev.Flags = frame.Flags(rec[4])
				ev.StreamID = uint32(rec[2])
				ev.Length = int(rec[3]) * 21
			}
			d.observeLocked(&ev)
		}
		d.sweepLocked(now)
		for _, det := range d.detections {
			if det.Score < 1 {
				t.Errorf("detection fired below threshold: %+v", det)
			}
		}
		for id, st := range d.states {
			if score, _ := st.score(now, &d.th); score < 0 {
				t.Errorf("conn %d: negative score %v", id, score)
			}
			t0 := st.totals(now)
			t1 := st.totals(now.Add(d.cfg.Window / 2))
			t2 := st.totals(now.Add(2 * d.cfg.Window))
			assertNoBucketGrowth(t, t0, t1)
			assertNoBucketGrowth(t, t1, t2)
			if t2 != (statBucket{}) {
				t.Errorf("conn %d: totals survived a full window of silence: %+v", id, t2)
			}
			if score, _ := st.score(now.Add(2*d.cfg.Window), &d.th); score < 0 {
				t.Errorf("conn %d: negative score after eviction: %v", id, score)
			}
		}
	})
}

// --- overhead benchmark ---

// quietThresholds never fire, so the benchmark measures pure bookkeeping.
func quietThresholds() Thresholds {
	return Thresholds{
		HeaderRate: 1e12, ResetRate: 1e12, MinResets: 1 << 30, ResetRatio: 1,
		SettingsRate: 1e12, ContinuationRate: 1e12,
		AsymmetryMinBytes: 1 << 30, AsymmetryFactor: 1e12,
		TinyDataRate: 1e12, TinyDataBytes: 1,
		StarvationTime: time.Hour,
	}
}

// BenchmarkDetectorOverhead compares request latency through an untraced
// server against the same server with tracing plus a live detector
// attached; the delta is the detector tax (target: under 10%).
func BenchmarkDetectorOverhead(b *testing.B) {
	run := func(b *testing.B, detector bool) {
		srv := New(ApacheProfile(), DefaultSite("bench.example"))
		if detector {
			srv.Trace = trace.New(1 << 12)
			srv.StartDetector(DetectorConfig{Thresholds: quietThresholds()}, nil)
		}
		l := netsim.NewListener("bench-detect")
		go func() {
			_ = srv.Serve(l)
		}()
		defer srv.Close()
		nc, err := l.Dial()
		if err != nil {
			b.Fatalf("dial: %v", err)
		}
		opts := h2conn.DefaultOptions()
		opts.EventLogLimit = 512
		c, err := h2conn.Dial(nc, opts)
		if err != nil {
			b.Fatalf("h2 dial: %v", err)
		}
		defer func() {
			_ = c.Close()
		}()
		req := h2conn.Request{Authority: "bench.example", Path: "/about.html"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.FetchBody(req, 5*time.Second); err != nil {
				b.Fatalf("fetch %d: %v", i, err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, false) })
	b.Run("detector", func(b *testing.B) { run(b, true) })
}
