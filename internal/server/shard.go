package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"

	"h2scope/internal/metrics"
)

// maxShards caps the shard count: conn tables are sharded to spread lock
// contention across accept/serve workers, and past a point more shards only
// cost memory.
const maxShards = 16

// serverShard is one slice of the server's connection-tracking plane. Each
// shard owns its conn table under its own mutex and runs its own accept
// goroutine per listener, so steady-state conn registration never contends
// on a global lock. Shutdown and Close sweep every shard.
type serverShard struct {
	id int

	mu     sync.Mutex
	conns  map[*conn]struct{}
	closed bool

	// gauge is the per-shard h2_shard_conns{shard=N} gauge, nil without
	// Server.Metrics.
	gauge *metrics.Gauge
}

// shardInit builds the shard set on first use. Server.Shards (when positive)
// selects the count; the default is GOMAXPROCS capped at maxShards.
func (s *Server) shardInit() {
	s.shardOnce.Do(func() {
		n := s.Shards
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if n > maxShards {
			n = maxShards
		}
		shards := make([]*serverShard, n)
		for i := range shards {
			sh := &serverShard{id: i, conns: make(map[*conn]struct{})}
			if s.Metrics != nil {
				sh.gauge = s.Metrics.shardConns(i)
			}
			shards[i] = sh
		}
		s.shards = shards
	})
}

// pickShard assigns a connection to a shard round-robin; used by ServeConn,
// where no accept loop made the assignment.
func (s *Server) pickShard() *serverShard {
	n := s.nextShard.Add(1)
	return s.shards[(n-1)%uint32(len(s.shards))]
}

// reserve claims a waitgroup slot for a new connection under the shard
// lock. It reports false once the shard is closed, which (with closeShards
// taking each shard lock before wg.Wait) guarantees no wg.Add can race a
// Close/Shutdown wg.Wait.
func (s *Server) reserve(sh *serverShard) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return false
	}
	s.wg.Add(1)
	return true
}

// track registers c in its shard for Shutdown's GOAWAY/force-close sweep.
// It reports false when the shard already closed, so a connection accepted
// just before Close/Shutdown cannot slip past the sweep and linger.
func (sh *serverShard) track(c *conn) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.closed {
		return false
	}
	sh.conns[c] = struct{}{}
	if sh.gauge != nil {
		sh.gauge.Add(1)
	}
	return true
}

func (sh *serverShard) untrack(c *conn) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.conns, c)
	if sh.gauge != nil {
		sh.gauge.Add(-1)
	}
}

// closeShards marks every shard closed and returns the tracked connections.
// After it returns, no reserve or track can succeed, so wg.Wait cannot be
// raced by a late wg.Add.
func (s *Server) closeShards() []*conn {
	var conns []*conn
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.closed = true
		for c := range sh.conns {
			conns = append(conns, c)
		}
		sh.mu.Unlock()
	}
	return conns
}

// acceptLoop accepts connections from l into shard sh until the listener
// fails or the server closes. One loop runs per (listener, shard) pair, so
// accepted conns stripe across shards by accepting goroutine.
func (s *Server) acceptLoop(l net.Listener, sh *serverShard) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		if !s.reserve(sh) {
			_ = nc.Close()
			return nil
		}
		go func() {
			defer s.wg.Done()
			if err := s.serveConnOn(nc, sh); err != nil && !errors.Is(err, io.EOF) {
				s.logf("conn %v: %v", nc.RemoteAddr(), err)
			}
		}()
	}
}
