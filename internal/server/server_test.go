package server_test

import (
	"strconv"
	"testing"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
)

const testTimeout = 5 * time.Second

// start launches a server for profile over an in-memory listener and
// returns a dialer. Cleanup is registered on t.
func start(t *testing.T, p server.Profile) func(opts h2conn.Options) *h2conn.Conn {
	t.Helper()
	srv := server.New(p, server.DefaultSite("test.example"))
	l := netsim.NewListener(p.Name)
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	return func(opts h2conn.Options) *h2conn.Conn {
		t.Helper()
		nc, err := l.Dial()
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		c, err := h2conn.Dial(nc, opts)
		if err != nil {
			t.Fatalf("h2 dial: %v", err)
		}
		t.Cleanup(func() {
			_ = c.Close()
		})
		return c
	}
}

func TestBasicGETAllProfiles(t *testing.T) {
	for _, p := range server.TestbedProfiles() {
		p := p
		t.Run(p.Family, func(t *testing.T) {
			t.Parallel()
			c := start(t, p)(h2conn.DefaultOptions())
			if _, err := c.WaitSettings(testTimeout); err != nil {
				t.Fatalf("WaitSettings: %v", err)
			}
			resp, err := c.FetchBody(h2conn.Request{Authority: "test.example", Path: "/"}, testTimeout)
			if err != nil {
				t.Fatalf("FetchBody: %v", err)
			}
			if resp.Status() != "200" {
				t.Errorf("status = %q, want 200", resp.Status())
			}
			if got := resp.Header("server"); got != p.Name {
				t.Errorf("server header = %q, want %q", got, p.Name)
			}
			if len(resp.Body) == 0 || !resp.EndStream {
				t.Errorf("body len=%d endStream=%v", len(resp.Body), resp.EndStream)
			}
		})
	}
}

func Test404(t *testing.T) {
	c := start(t, server.NginxProfile())(h2conn.DefaultOptions())
	resp, err := c.FetchBody(h2conn.Request{Authority: "test.example", Path: "/missing"}, testTimeout)
	if err != nil {
		t.Fatalf("FetchBody: %v", err)
	}
	if resp.Status() != "404" {
		t.Errorf("status = %q, want 404", resp.Status())
	}
}

func TestSettingsAdvertised(t *testing.T) {
	p := server.H2OProfile()
	c := start(t, p)(h2conn.DefaultOptions())
	ev, err := c.WaitSettings(testTimeout)
	if err != nil {
		t.Fatalf("WaitSettings: %v", err)
	}
	got := map[frame.SettingID]uint32{}
	for _, s := range ev.Settings {
		got[s.ID] = s.Val
	}
	if got[frame.SettingMaxConcurrentStreams] != p.MaxConcurrentStreams {
		t.Errorf("MAX_CONCURRENT_STREAMS = %d, want %d",
			got[frame.SettingMaxConcurrentStreams], p.MaxConcurrentStreams)
	}
	if got[frame.SettingInitialWindowSize] != p.InitialWindowSize {
		t.Errorf("INITIAL_WINDOW_SIZE = %d, want %d",
			got[frame.SettingInitialWindowSize], p.InitialWindowSize)
	}
}

func TestNginxAdvertisesZeroWindowThenBoost(t *testing.T) {
	// Table V observation: Nginx advertises SETTINGS_INITIAL_WINDOW_SIZE 0
	// and immediately reopens windows with WINDOW_UPDATE frames.
	c := start(t, server.NginxProfile())(h2conn.DefaultOptions())
	events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
		var sawSettings, sawBoost bool
		for _, e := range evs {
			if e.Type == frame.TypeSettings && !e.IsAck() {
				sawSettings = true
			}
			if e.Type == frame.TypeWindowUpdate && e.StreamID == 0 {
				sawBoost = true
			}
		}
		return sawSettings && sawBoost
	})
	if err != nil {
		t.Fatalf("WaitFor: %v (events: %d)", err, len(events))
	}
	for _, e := range events {
		if e.Type == frame.TypeSettings && !e.IsAck() {
			for _, s := range e.Settings {
				if s.ID == frame.SettingInitialWindowSize && s.Val != 0 {
					t.Errorf("INITIAL_WINDOW_SIZE = %d, want 0", s.Val)
				}
			}
		}
	}
}

func TestMultiplexingInterleavesLargeObjects(t *testing.T) {
	// Section III-A.1: N concurrent downloads of large objects must yield
	// interleaved DATA frames on every testbed profile.
	for _, p := range server.TestbedProfiles() {
		p := p
		t.Run(p.Family, func(t *testing.T) {
			t.Parallel()
			c := start(t, p)(h2conn.DefaultOptions())
			if _, err := c.WaitSettings(testTimeout); err != nil {
				t.Fatal(err)
			}
			id1, err := c.OpenStream(h2conn.Request{Authority: "test.example", Path: "/large/1"})
			if err != nil {
				t.Fatal(err)
			}
			id2, err := c.OpenStream(h2conn.Request{Authority: "test.example", Path: "/large/2"})
			if err != nil {
				t.Fatal(err)
			}
			events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
				done := 0
				for _, e := range evs {
					if e.Type == frame.TypeData && e.StreamEnded() {
						done++
					}
				}
				return done >= 2
			})
			if err != nil {
				t.Fatalf("WaitFor: %v", err)
			}
			r1 := h2conn.AssembleResponse(events, id1)
			r2 := h2conn.AssembleResponse(events, id2)
			if len(r1.Body) != 96*1024 || len(r2.Body) != 96*1024 {
				t.Fatalf("body lengths %d/%d, want 98304", len(r1.Body), len(r2.Body))
			}
			// Interleaved: stream 1's last DATA arrives after stream 2's
			// first, and vice versa.
			if !(r1.LastDataSeq > r2.FirstDataSeq && r2.LastDataSeq > r1.FirstDataSeq) {
				t.Errorf("responses not interleaved: s1=[%d..%d] s2=[%d..%d]",
					r1.FirstDataSeq, r1.LastDataSeq, r2.FirstDataSeq, r2.LastDataSeq)
			}
		})
	}
}

func TestFlowControlOneByteWindow(t *testing.T) {
	// Section III-B.1: with SETTINGS_INITIAL_WINDOW_SIZE=1 the first DATA
	// frame must carry exactly one byte.
	opts := h2conn.Options{
		Settings:        []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: 1}},
		AutoSettingsAck: true,
		AutoPingAck:     true,
	}
	c := start(t, server.ApacheProfile())(opts)
	if _, err := c.WaitSettings(testTimeout); err != nil {
		t.Fatal(err)
	}
	id, err := c.OpenStream(h2conn.Request{Authority: "test.example", Path: "/static/app.js"})
	if err != nil {
		t.Fatal(err)
	}
	events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeData && e.StreamID == id {
				return true
			}
		}
		return false
	})
	if err != nil {
		t.Fatalf("WaitFor DATA: %v", err)
	}
	resp := h2conn.AssembleResponse(events, id)
	if len(resp.DataFrameSizes) == 0 || resp.DataFrameSizes[0] != 1 {
		t.Fatalf("first DATA frame sizes = %v, want leading 1", resp.DataFrameSizes)
	}
}

func TestZeroInitialWindowHeadersBehavior(t *testing.T) {
	// Section III-B.2: at SETTINGS_INITIAL_WINDOW_SIZE=0 a compliant server
	// returns HEADERS without DATA; LiteSpeed withholds even HEADERS.
	opts := h2conn.Options{
		Settings:        []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: 0}},
		AutoSettingsAck: true,
	}
	t.Run("compliant", func(t *testing.T) {
		c := start(t, server.NginxProfile())(opts)
		if _, err := c.WaitSettings(testTimeout); err != nil {
			t.Fatal(err)
		}
		id, err := c.OpenStream(h2conn.Request{Authority: "test.example", Path: "/static/app.js"})
		if err != nil {
			t.Fatal(err)
		}
		events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
			for _, e := range evs {
				if e.Type == frame.TypeHeaders && e.StreamID == id {
					return true
				}
			}
			return false
		})
		if err != nil {
			t.Fatalf("no HEADERS at zero window: %v", err)
		}
		for _, e := range events {
			if e.Type == frame.TypeData && e.StreamID == id && len(e.Data) > 0 {
				t.Error("server sent DATA despite zero window")
			}
		}
	})
	t.Run("litespeed withholds headers", func(t *testing.T) {
		c := start(t, server.LiteSpeedProfile())(opts)
		if _, err := c.WaitSettings(testTimeout); err != nil {
			t.Fatal(err)
		}
		id, err := c.OpenStream(h2conn.Request{Authority: "test.example", Path: "/static/app.js"})
		if err != nil {
			t.Fatal(err)
		}
		events := c.WaitQuiet(50*time.Millisecond, time.Second)
		for _, e := range events {
			if e.Type == frame.TypeHeaders && e.StreamID == id {
				t.Error("LiteSpeed profile sent HEADERS under zero window")
			}
		}
	})
}

func TestZeroWindowUpdateReactions(t *testing.T) {
	// Section III-B.3 / Table III rows 6-7.
	tests := []struct {
		profile    server.Profile
		streamWant frame.Type // expected frame type in reaction, or 0 for ignore
		connWant   frame.Type
	}{
		{server.NginxProfile(), 0, 0},
		{server.LiteSpeedProfile(), frame.TypeRSTStream, frame.TypeGoAway},
		{server.H2OProfile(), frame.TypeRSTStream, frame.TypeGoAway},
		{server.NghttpdProfile(), frame.TypeGoAway, frame.TypeGoAway},
		{server.TengineProfile(), 0, 0},
		{server.ApacheProfile(), frame.TypeGoAway, frame.TypeGoAway},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.profile.Family+"/stream", func(t *testing.T) {
			t.Parallel()
			dial := start(t, tt.profile)
			c := dial(h2conn.DefaultOptions())
			if _, err := c.WaitSettings(testTimeout); err != nil {
				t.Fatal(err)
			}
			id, err := c.OpenStream(h2conn.Request{Authority: "test.example", Path: "/"})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.WriteWindowUpdate(id, 0); err != nil {
				t.Fatal(err)
			}
			checkReaction(t, c, tt.streamWant, id)
		})
		t.Run(tt.profile.Family+"/conn", func(t *testing.T) {
			t.Parallel()
			dial := start(t, tt.profile)
			c := dial(h2conn.DefaultOptions())
			if _, err := c.WaitSettings(testTimeout); err != nil {
				t.Fatal(err)
			}
			if err := c.WriteWindowUpdate(0, 0); err != nil {
				t.Fatal(err)
			}
			checkReaction(t, c, tt.connWant, 0)
		})
	}
}

// checkReaction verifies the server reacted with the wanted frame type on
// the given stream (0 scans GOAWAY), or stayed silent for want == 0.
func checkReaction(t *testing.T, c *h2conn.Conn, want frame.Type, streamID uint32) {
	t.Helper()
	if want == 0 {
		events := c.WaitQuiet(50*time.Millisecond, time.Second)
		for _, e := range events {
			if e.Type == frame.TypeRSTStream || e.Type == frame.TypeGoAway {
				t.Errorf("expected silence, saw %v", e.Type)
			}
		}
		return
	}
	_, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == want && (want == frame.TypeGoAway || e.StreamID == streamID) {
				return true
			}
		}
		return false
	})
	if err != nil {
		t.Fatalf("waiting for %v: %v (events: %+v)", want, err, summarize(c.Events()))
	}
}

func summarize(events []h2conn.Event) []string {
	out := make([]string, 0, len(events))
	for _, e := range events {
		out = append(out, e.Type.String())
	}
	return out
}

func TestLargeWindowUpdateReactions(t *testing.T) {
	// Section III-B.4: overflowing the connection window draws GOAWAY; a
	// stream window draws RST_STREAM — on every testbed profile.
	for _, p := range server.TestbedProfiles() {
		p := p
		t.Run(p.Family+"/conn", func(t *testing.T) {
			t.Parallel()
			c := start(t, p)(h2conn.DefaultOptions())
			if _, err := c.WaitSettings(testTimeout); err != nil {
				t.Fatal(err)
			}
			if err := c.WriteWindowUpdate(0, frame.MaxWindowSize); err != nil {
				t.Fatal(err)
			}
			if err := c.WriteWindowUpdate(0, frame.MaxWindowSize); err != nil {
				t.Fatal(err)
			}
			checkReaction(t, c, frame.TypeGoAway, 0)
		})
		t.Run(p.Family+"/stream", func(t *testing.T) {
			t.Parallel()
			// No automatic window refills: the stream must stay open and
			// flow-blocked while the oversized updates arrive.
			c := start(t, p)(h2conn.Options{AutoSettingsAck: true, AutoPingAck: true})
			if _, err := c.WaitSettings(testTimeout); err != nil {
				t.Fatal(err)
			}
			id, err := c.OpenStream(h2conn.Request{Authority: "test.example", Path: "/large/1"})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.WriteWindowUpdate(id, frame.MaxWindowSize); err != nil {
				t.Fatal(err)
			}
			if err := c.WriteWindowUpdate(id, frame.MaxWindowSize); err != nil {
				t.Fatal(err)
			}
			checkReaction(t, c, frame.TypeRSTStream, id)
		})
	}
}

func TestSelfDependencyReactions(t *testing.T) {
	// Section III-C.2 / Table III row 12.
	tests := []struct {
		profile server.Profile
		want    frame.Type
	}{
		{server.NginxProfile(), frame.TypeRSTStream},
		{server.LiteSpeedProfile(), 0},
		{server.H2OProfile(), frame.TypeGoAway},
		{server.NghttpdProfile(), frame.TypeGoAway},
		{server.TengineProfile(), frame.TypeRSTStream},
		{server.ApacheProfile(), frame.TypeGoAway},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.profile.Family, func(t *testing.T) {
			t.Parallel()
			c := start(t, tt.profile)(h2conn.DefaultOptions())
			if _, err := c.WaitSettings(testTimeout); err != nil {
				t.Fatal(err)
			}
			id := c.NextStreamID()
			if err := c.WritePriority(id, frame.PriorityParam{StreamDep: id, Weight: 15}); err != nil {
				t.Fatal(err)
			}
			checkReaction(t, c, tt.want, id)
		})
	}
}

func TestMaxConcurrentStreamsEnforcement(t *testing.T) {
	// Section V-A: with MAX_CONCURRENT_STREAMS=0 every request is refused;
	// with 1, the second concurrent request is refused.
	p := server.NginxProfile()
	p.MaxConcurrentStreams = 0
	t.Run("zero", func(t *testing.T) {
		c := start(t, p)(h2conn.DefaultOptions())
		if _, err := c.WaitSettings(testTimeout); err != nil {
			t.Fatal(err)
		}
		id, err := c.OpenStream(h2conn.Request{Authority: "test.example", Path: "/"})
		if err != nil {
			t.Fatal(err)
		}
		events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
			for _, e := range evs {
				if e.Type == frame.TypeRSTStream && e.StreamID == id {
					return true
				}
			}
			return false
		})
		if err != nil {
			t.Fatalf("no RST_STREAM: %v", err)
		}
		resp := h2conn.AssembleResponse(events, id)
		if resp.Reset == nil || *resp.Reset != frame.ErrCodeRefusedStream {
			t.Errorf("reset = %v, want REFUSED_STREAM", resp.Reset)
		}
	})

	p1 := server.NginxProfile()
	p1.MaxConcurrentStreams = 1
	t.Run("one", func(t *testing.T) {
		c := start(t, p1)(h2conn.DefaultOptions())
		if _, err := c.WaitSettings(testTimeout); err != nil {
			t.Fatal(err)
		}
		// First request: a large object that stays open while the second
		// request arrives.
		id1, err := c.OpenStream(h2conn.Request{Authority: "test.example", Path: "/large/1"})
		if err != nil {
			t.Fatal(err)
		}
		id2, err := c.OpenStream(h2conn.Request{Authority: "test.example", Path: "/large/2"})
		if err != nil {
			t.Fatal(err)
		}
		events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
			for _, e := range evs {
				if e.Type == frame.TypeRSTStream && e.StreamID == id2 {
					return true
				}
			}
			return false
		})
		if err != nil {
			t.Fatalf("no RST_STREAM on second stream: %v", err)
		}
		r2 := h2conn.AssembleResponse(events, id2)
		if r2.Reset == nil || *r2.Reset != frame.ErrCodeRefusedStream {
			t.Errorf("second stream reset = %v, want REFUSED_STREAM", r2.Reset)
		}
		_ = id1
	})
}

func TestServerPush(t *testing.T) {
	site := server.DefaultSite("push.example")
	site.SetPush("/", "/static/style.css", "/static/app.js")
	for _, tt := range []struct {
		profile  server.Profile
		wantPush bool
	}{
		{server.H2OProfile(), true},
		{server.NghttpdProfile(), true},
		{server.ApacheProfile(), true},
		{server.NginxProfile(), false},
		{server.LiteSpeedProfile(), false},
		{server.TengineProfile(), false},
	} {
		tt := tt
		t.Run(tt.profile.Family, func(t *testing.T) {
			t.Parallel()
			srv := server.New(tt.profile, site)
			l := netsim.NewListener(tt.profile.Name)
			go func() {
				_ = srv.Serve(l)
			}()
			t.Cleanup(srv.Close)
			nc, err := l.Dial()
			if err != nil {
				t.Fatal(err)
			}
			c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() {
				_ = c.Close()
			})
			if _, err := c.WaitSettings(testTimeout); err != nil {
				t.Fatal(err)
			}
			if _, err := c.OpenStream(h2conn.Request{Authority: "push.example", Path: "/"}); err != nil {
				t.Fatal(err)
			}
			if !tt.wantPush {
				events := c.WaitQuiet(50*time.Millisecond, time.Second)
				for _, e := range events {
					if e.Type == frame.TypePushPromise {
						t.Error("non-push profile sent PUSH_PROMISE")
					}
				}
				return
			}
			events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
				promises, done := 0, 0
				for _, e := range evs {
					if e.Type == frame.TypePushPromise {
						promises++
					}
					if e.Type == frame.TypeData && e.StreamEnded() && e.StreamID%2 == 0 {
						done++
					}
				}
				return promises >= 2 && done >= 2
			})
			if err != nil {
				t.Fatalf("push incomplete: %v (%v)", err, summarize(events))
			}
			// Pushed responses arrive on even streams with correct bodies.
			var promised []uint32
			for _, e := range events {
				if e.Type == frame.TypePushPromise {
					promised = append(promised, e.PromiseID)
				}
			}
			for _, pid := range promised {
				resp := h2conn.AssembleResponse(events, pid)
				if len(resp.Body) == 0 {
					t.Errorf("pushed stream %d has empty body", pid)
				}
			}
		})
	}
}

func TestPushDisabledByClientSetting(t *testing.T) {
	site := server.DefaultSite("push.example")
	site.SetPush("/", "/static/style.css")
	srv := server.New(server.H2OProfile(), site)
	l := netsim.NewListener("push-off")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	opts := h2conn.DefaultOptions()
	opts.Settings = []frame.Setting{{ID: frame.SettingEnablePush, Val: 0}}
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = c.Close()
	})
	if _, err := c.WaitSettings(testTimeout); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FetchBody(h2conn.Request{Authority: "push.example", Path: "/"}, testTimeout); err != nil {
		t.Fatal(err)
	}
	for _, e := range c.Events() {
		if e.Type == frame.TypePushPromise {
			t.Fatal("server pushed despite SETTINGS_ENABLE_PUSH=0")
		}
	}
}

func TestPingAck(t *testing.T) {
	c := start(t, server.NginxProfile())(h2conn.DefaultOptions())
	if _, err := c.WaitSettings(testTimeout); err != nil {
		t.Fatal(err)
	}
	rtt, err := c.Ping([8]byte{1, 2, 3, 4, 5, 6, 7, 8}, testTimeout)
	if err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if rtt <= 0 {
		t.Errorf("rtt = %v, want > 0", rtt)
	}
}

func TestHPACKRatioDiffersByPolicy(t *testing.T) {
	// Section III-E / Figs. 4-5: repeated identical requests yield
	// shrinking response header blocks on indexing servers and constant
	// blocks on Nginx-style servers.
	ratio := func(t *testing.T, p server.Profile) float64 {
		t.Helper()
		c := start(t, p)(h2conn.DefaultOptions())
		if _, err := c.WaitSettings(testTimeout); err != nil {
			t.Fatal(err)
		}
		const reqCount = 5
		var total, first int
		for i := 0; i < reqCount; i++ {
			resp, err := c.FetchBody(h2conn.Request{Authority: "test.example", Path: "/about.html"}, testTimeout)
			if err != nil {
				t.Fatal(err)
			}
			if resp.HeaderBlockLen == 0 {
				t.Fatal("no header block length recorded")
			}
			if i == 0 {
				first = resp.HeaderBlockLen
			}
			total += resp.HeaderBlockLen
		}
		return float64(total) / float64(first*reqCount)
	}
	nginx := ratio(t, server.NginxProfile())
	h2o := ratio(t, server.H2OProfile())
	if nginx < 0.99 {
		t.Errorf("nginx ratio = %.3f, want ~1 (no response indexing)", nginx)
	}
	if h2o > 0.5 {
		t.Errorf("h2o ratio = %.3f, want < 0.5 (aggressive indexing)", h2o)
	}
}

func TestPrioritySchedulingOrdersResponses(t *testing.T) {
	// A compressed version of the paper's Algorithm 1 against the priority
	// profile: drain nothing, but give one stream a dependency on another
	// and check the parent's DATA completes first.
	c := start(t, server.H2OProfile())(h2conn.DefaultOptions())
	if _, err := c.WaitSettings(testTimeout); err != nil {
		t.Fatal(err)
	}
	parent := c.NextStreamID()
	child := c.NextStreamID()
	if err := c.OpenStreamID(parent, h2conn.Request{
		Authority: "test.example", Path: "/large/1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.OpenStreamID(child, h2conn.Request{
		Authority: "test.example", Path: "/large/2",
		Priority: frame.PriorityParam{StreamDep: parent, Weight: 15},
	}); err != nil {
		t.Fatal(err)
	}
	events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
		done := 0
		for _, e := range evs {
			if e.Type == frame.TypeData && e.StreamEnded() {
				done++
			}
		}
		return done >= 2
	})
	if err != nil {
		t.Fatal(err)
	}
	rp := h2conn.AssembleResponse(events, parent)
	rc := h2conn.AssembleResponse(events, child)
	if rp.LastDataSeq > rc.FirstDataSeq {
		t.Errorf("parent finished at %d after child started at %d; priority ignored",
			rp.LastDataSeq, rc.FirstDataSeq)
	}
}

func TestRoundRobinIgnoresPriority(t *testing.T) {
	c := start(t, server.NginxProfile())(h2conn.DefaultOptions())
	if _, err := c.WaitSettings(testTimeout); err != nil {
		t.Fatal(err)
	}
	parent := c.NextStreamID()
	child := c.NextStreamID()
	if err := c.OpenStreamID(parent, h2conn.Request{Authority: "test.example", Path: "/large/1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.OpenStreamID(child, h2conn.Request{
		Authority: "test.example", Path: "/large/2",
		Priority: frame.PriorityParam{StreamDep: parent, Weight: 15},
	}); err != nil {
		t.Fatal(err)
	}
	events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
		done := 0
		for _, e := range evs {
			if e.Type == frame.TypeData && e.StreamEnded() {
				done++
			}
		}
		return done >= 2
	})
	if err != nil {
		t.Fatal(err)
	}
	rp := h2conn.AssembleResponse(events, parent)
	rc := h2conn.AssembleResponse(events, child)
	// Round-robin: the child's DATA starts before the parent finishes.
	if rc.FirstDataSeq > rp.LastDataSeq {
		t.Errorf("child started at %d after parent finished at %d; looks priority-scheduled",
			rc.FirstDataSeq, rp.LastDataSeq)
	}
}

func TestOmitSettingsServerSendsEmptySettings(t *testing.T) {
	// The "NULL" rows of Tables V-VII: an empty SETTINGS frame.
	p := server.NginxProfile()
	p.OmitSettings = true
	p.ConnWindowBoost = 0
	p.StreamWindowBoost = 0
	c := start(t, p)(h2conn.DefaultOptions())
	ev, err := c.WaitSettings(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Settings) != 0 {
		t.Errorf("settings = %v, want empty frame", ev.Settings)
	}
	// The server must still serve normally.
	resp, err := c.FetchBody(h2conn.Request{Authority: "test.example", Path: "/"}, testTimeout)
	if err != nil || resp.Status() != "200" {
		t.Fatalf("fetch after NULL settings: %v / %q", err, resp.Status())
	}
}

func TestWindowUpdateOnIdleStreamIgnored(t *testing.T) {
	c := start(t, server.ApacheProfile())(h2conn.DefaultOptions())
	if _, err := c.WaitSettings(testTimeout); err != nil {
		t.Fatal(err)
	}
	// Stream 99 was never opened; a WINDOW_UPDATE for it must not kill
	// the connection.
	if err := c.WriteWindowUpdate(99, 1000); err != nil {
		t.Fatal(err)
	}
	resp, err := c.FetchBody(h2conn.Request{Authority: "test.example", Path: "/"}, testTimeout)
	if err != nil || resp.Status() != "200" {
		t.Fatalf("connection unusable after idle-stream update: %v", err)
	}
}

func TestPushedStreamsRespectFlowControl(t *testing.T) {
	// Pushed DATA is flow-controlled like any other: with a tiny stream
	// window, promised streams stall after the window is consumed.
	site := server.DefaultSite("pushfc.example")
	site.SetPush("/", "/static/hero.jpg") // 48 KiB
	srv := server.New(server.H2OProfile(), site)
	l := netsim.NewListener("pushfc")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	opts := h2conn.Options{
		Settings:        []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: 16}},
		AutoSettingsAck: true,
		AutoPingAck:     true,
	}
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if _, err := c.WaitSettings(testTimeout); err != nil {
		t.Fatal(err)
	}
	if _, err := c.OpenStream(h2conn.Request{Authority: "pushfc.example", Path: "/"}); err != nil {
		t.Fatal(err)
	}
	events := c.WaitQuiet(50*time.Millisecond, 2*time.Second)
	var promised []uint32
	for _, e := range events {
		if e.Type == frame.TypePushPromise {
			promised = append(promised, e.PromiseID)
		}
	}
	if len(promised) != 1 {
		t.Fatalf("promises = %v, want 1", promised)
	}
	pushResp := h2conn.AssembleResponse(events, promised[0])
	if len(pushResp.Body) > 16 {
		t.Errorf("pushed stream sent %d bytes against a 16-byte window", len(pushResp.Body))
	}
	if pushResp.EndStream {
		t.Error("pushed stream completed despite the stalled window")
	}
}

func TestPushedStreamDependsOnRequestStream(t *testing.T) {
	// RFC 7540 section 5.3.5: pushed streams depend on the associated
	// stream, so under priority scheduling the page's DATA completes
	// before the pushed object's.
	site := server.NewSite("pushprio.example")
	site.AddObject("/", 64*1024)
	site.AddObject("/pushed", 64*1024)
	site.SetPush("/", "/pushed")
	srv := server.New(server.H2OProfile(), site)
	l := netsim.NewListener("pushprio")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if _, err := c.WaitSettings(testTimeout); err != nil {
		t.Fatal(err)
	}
	id, err := c.OpenStream(h2conn.Request{Authority: "pushprio.example", Path: "/"})
	if err != nil {
		t.Fatal(err)
	}
	events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
		done := 0
		for _, e := range evs {
			if e.Type == frame.TypeData && e.StreamEnded() {
				done++
			}
		}
		return done >= 2
	})
	if err != nil {
		t.Fatal(err)
	}
	page := h2conn.AssembleResponse(events, id)
	pushed := h2conn.AssembleResponse(events, 2)
	if page.LastDataSeq > pushed.FirstDataSeq {
		t.Errorf("pushed stream started (seq %d) before page finished (seq %d)",
			pushed.FirstDataSeq, page.LastDataSeq)
	}
}

func TestSequentialModeServesInArrivalOrder(t *testing.T) {
	p := server.NginxProfile()
	p.Scheduling = server.SchedSequential
	c := start(t, p)(h2conn.DefaultOptions())
	if _, err := c.WaitSettings(testTimeout); err != nil {
		t.Fatal(err)
	}
	var ids []uint32
	for i := 1; i <= 3; i++ {
		id, err := c.OpenStream(h2conn.Request{Authority: "test.example", Path: "/large/" + strconv.Itoa(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
		done := 0
		for _, e := range evs {
			if e.Type == frame.TypeData && e.StreamEnded() {
				done++
			}
		}
		return done >= 3
	})
	if err != nil {
		t.Fatal(err)
	}
	prevLast := -1
	for _, id := range ids {
		r := h2conn.AssembleResponse(events, id)
		if r.FirstDataSeq < prevLast {
			t.Errorf("stream %d started at %d before predecessor finished at %d", id, r.FirstDataSeq, prevLast)
		}
		prevLast = r.LastDataSeq
	}
}

func TestWeightedFairShareBetweenSiblings(t *testing.T) {
	// RFC 7540 §5.3.2: siblings share capacity proportionally to weight.
	// Two 96 KiB downloads with effective weights 128 and 32 should see
	// DATA delivered roughly 4:1 while both are active.
	c := start(t, server.H2OProfile())(h2conn.DefaultOptions())
	if _, err := c.WaitSettings(testTimeout); err != nil {
		t.Fatal(err)
	}
	heavy := c.NextStreamID()
	light := c.NextStreamID()
	if err := c.OpenStreamID(heavy, h2conn.Request{
		Authority: "test.example", Path: "/large/1",
		Priority: frame.PriorityParam{StreamDep: 0, Weight: 127}, // effective 128
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.OpenStreamID(light, h2conn.Request{
		Authority: "test.example", Path: "/large/2",
		Priority: frame.PriorityParam{StreamDep: 0, Weight: 31}, // effective 32
	}); err != nil {
		t.Fatal(err)
	}
	events, err := c.WaitFor(testTimeout, func(evs []h2conn.Event) bool {
		done := 0
		for _, e := range evs {
			if e.Type == frame.TypeData && e.StreamEnded() {
				done++
			}
		}
		return done >= 2
	})
	if err != nil {
		t.Fatal(err)
	}
	// Count bytes delivered to each stream until the heavy one finishes
	// (after that the light stream has the link to itself).
	heavyBytes, lightBytes := 0, 0
	for _, e := range events {
		if e.Type != frame.TypeData {
			continue
		}
		switch e.StreamID {
		case heavy:
			heavyBytes += len(e.Data)
		case light:
			lightBytes += len(e.Data)
		}
		if e.StreamID == heavy && e.StreamEnded() {
			break
		}
	}
	if lightBytes == 0 {
		t.Fatal("light stream starved entirely: weighted sharing absent")
	}
	ratio := float64(heavyBytes) / float64(lightBytes)
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("byte ratio while both active = %.2f (heavy %d / light %d), want ~4",
			ratio, heavyBytes, lightBytes)
	}
}
