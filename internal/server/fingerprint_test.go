package server

import (
	"crypto/tls"
	"encoding/json"
	"testing"
	"time"

	"h2scope/internal/fingerprint"
	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/netsim"
	"h2scope/internal/tlsutil"
	"h2scope/internal/trace"
)

// startFPServer serves profile p over a netsim listener and returns a
// connected impersonating client.
func startFPServer(t *testing.T, p Profile, imp *fingerprint.ClientProfile) (*Server, *h2conn.Conn) {
	t.Helper()
	srv := New(p, DefaultSite("fp.example"))
	l := netsim.NewListener("fp-" + p.Name)
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { srv.Close() })
	nc, err := l.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	opts := h2conn.DefaultOptions()
	opts.Impersonate = imp
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		t.Fatalf("h2 dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return srv, c
}

// fetchEcho GETs /fp and parses the echo document.
func fetchEcho(t *testing.T, c *h2conn.Conn) *fingerprint.Echo {
	t.Helper()
	res, err := c.FetchBody(h2conn.Request{Authority: "fp.example", Path: "/fp"}, 5*time.Second)
	if err != nil {
		t.Fatalf("fetch /fp: %v", err)
	}
	var echo fingerprint.Echo
	if err := json.Unmarshal(res.Body, &echo); err != nil {
		t.Fatalf("parse /fp echo %q: %v", res.Body, err)
	}
	return &echo
}

// TestFingerprintEchoImpersonation is the impersonation round trip: for
// each builtin client profile, a connection wearing it must be read back
// by the server as exactly that profile's akamai fingerprint.
func TestFingerprintEchoImpersonation(t *testing.T) {
	for _, imp := range fingerprint.BuiltinProfiles() {
		t.Run(imp.Name, func(t *testing.T) {
			_, c := startFPServer(t, ApacheProfile(), imp)
			echo := fetchEcho(t, c)
			if want := imp.ExpectedAkamai(); echo.H2 != want {
				t.Errorf("echoed h2 fingerprint\n got %s\nwant %s", echo.H2, want)
			}
			if echo.JA4H == "" {
				t.Error("echo carries no JA4H")
			}
			if echo.JA3 != "" || echo.JA4 != "" {
				t.Errorf("cleartext conn echoed TLS fingerprints: ja3=%q ja4=%q", echo.JA3, echo.JA4)
			}
			if got := fingerprint.MatchProfile(&fingerprint.H2Fingerprint{}); got != "" {
				t.Errorf("empty fingerprint classified as %q", got)
			}
		})
	}
}

// TestFingerprintEchoTLS drives the full TLS path: fingerprint listener,
// real handshake, h2 over it, and a /fp echo carrying JA3/JA4/SNI/ALPN.
func TestFingerprintEchoTLS(t *testing.T) {
	cert, err := tlsutil.SelfSignedCert("fp.example")
	if err != nil {
		t.Fatalf("cert: %v", err)
	}
	srv := New(ApacheProfile(), DefaultSite("fp.example"))
	inner := netsim.NewListener("fp-tls")
	l := tlsutil.NewFingerprintListener(inner, tlsutil.ServerConfig(cert, true))
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()

	nc, err := inner.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	tc := tls.Client(nc, tlsutil.ClientConfig("fp.example"))
	if err := tc.Handshake(); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	c, err := h2conn.Dial(tc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatalf("h2 dial: %v", err)
	}
	defer c.Close()

	echo := fetchEcho(t, c)
	if echo.JA3 == "" || echo.JA3Hash == "" || echo.JA4 == "" {
		t.Errorf("TLS echo missing ClientHello fingerprints: %+v", echo)
	}
	if echo.SNI != "fp.example" {
		t.Errorf("echoed SNI = %q, want fp.example", echo.SNI)
	}
	if echo.ALPN != tlsutil.ProtoH2 {
		t.Errorf("echoed ALPN = %q, want h2", echo.ALPN)
	}
	if echo.H2 == "" {
		t.Error("TLS echo carries no h2 behavioral fingerprint")
	}
}

// TestFingerprintAdaptiveSettings: an adaptive profile re-tunes
// SETTINGS_MAX_CONCURRENT_STREAMS by client class once the fingerprint
// seals — browsers high, tools low — and a plain profile never does.
func TestFingerprintAdaptiveSettings(t *testing.T) {
	adaptiveLimit := func(t *testing.T, adaptive bool, imp *fingerprint.ClientProfile) (uint32, bool) {
		p := ApacheProfile()
		p.FingerprintAdaptive = adaptive
		_, c := startFPServer(t, p, imp)
		if _, err := c.FetchBody(h2conn.Request{Authority: "fp.example", Path: "/about.html"}, 5*time.Second); err != nil {
			t.Fatalf("fetch: %v", err)
		}
		var limit uint32
		found := false
		for _, e := range c.Events() {
			if e.Type != frame.TypeSettings || e.IsAck() || e.Seq == 0 {
				continue
			}
			for _, s := range e.Settings {
				if s.ID == frame.SettingMaxConcurrentStreams {
					limit, found = s.Val, true
				}
			}
		}
		return limit, found
	}

	if limit, ok := adaptiveLimit(t, true, fingerprint.ChromeProfile()); !ok || limit != 256 {
		t.Errorf("chrome against adaptive server: limit=%d found=%v, want 256", limit, ok)
	}
	if limit, ok := adaptiveLimit(t, true, fingerprint.CurlProfile()); !ok || limit != 64 {
		t.Errorf("curl against adaptive server: limit=%d found=%v, want 64", limit, ok)
	}
	if limit, ok := adaptiveLimit(t, false, fingerprint.ChromeProfile()); ok {
		t.Errorf("non-adaptive server re-tuned SETTINGS to %d", limit)
	}
}

// TestFingerprintDisabled: DisableFingerprint keeps /fp answering but
// empty of behavioral data, so probes can tell the plane is off.
func TestFingerprintDisabled(t *testing.T) {
	p := ApacheProfile()
	srv := New(p, DefaultSite("fp.example"))
	srv.DisableFingerprint = true
	l := netsim.NewListener("fp-disabled")
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	nc, err := l.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatalf("h2 dial: %v", err)
	}
	defer c.Close()
	echo := fetchEcho(t, c)
	if echo.H2 != "" {
		t.Errorf("disabled plane still echoed h2 fingerprint %q", echo.H2)
	}
	if echo.JA4H == "" {
		t.Error("disabled plane dropped JA4H (request-derived, should survive)")
	}
}

// TestDetectionCarriesFingerprint: a connection that completes a request
// and then attacks gets its detection labeled with the sealed akamai
// fingerprint.
func TestDetectionCarriesFingerprint(t *testing.T) {
	imp := fingerprint.CurlProfile()
	srv := New(ApacheProfile(), DefaultSite("fp.example"))
	srv.Trace = trace.New(1 << 12)
	th := quietThresholds()
	th.SettingsRate = 5
	detCh := make(chan Detection, 1)
	srv.StartDetector(DetectorConfig{
		Thresholds: th,
		OnDetect: func(d Detection) {
			select {
			case detCh <- d:
			default:
			}
		},
	}, nil)
	l := netsim.NewListener("fp-detect")
	go func() { _ = srv.Serve(l) }()
	defer srv.Close()
	nc, err := l.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	opts := h2conn.DefaultOptions()
	opts.Impersonate = imp
	c, err := h2conn.Dial(nc, opts)
	if err != nil {
		t.Fatalf("h2 dial: %v", err)
	}
	defer c.Close()
	if _, err := c.FetchBody(h2conn.Request{Authority: "fp.example", Path: "/about.html"}, 5*time.Second); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	// Settings flood: well past 5/s.
	for i := 0; i < 50; i++ {
		if err := c.WriteSettings(); err != nil {
			t.Fatalf("settings flood: %v", err)
		}
	}
	select {
	case det := <-detCh:
		if det.Fingerprint != imp.ExpectedAkamai() {
			t.Errorf("detection fingerprint = %q, want %q", det.Fingerprint, imp.ExpectedAkamai())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("settings flood never detected")
	}
}

// BenchmarkFingerprintOverhead compares request latency with the
// fingerprint plane off and on; the delta is the fingerprint tax
// (target: under 5%, gated in CI via cmd/benchjson).
func BenchmarkFingerprintOverhead(b *testing.B) {
	run := func(b *testing.B, enabled bool) {
		srv := New(ApacheProfile(), DefaultSite("bench.example"))
		srv.DisableFingerprint = !enabled
		l := netsim.NewListener("bench-fp")
		go func() { _ = srv.Serve(l) }()
		defer srv.Close()
		nc, err := l.Dial()
		if err != nil {
			b.Fatalf("dial: %v", err)
		}
		opts := h2conn.DefaultOptions()
		opts.EventLogLimit = 512
		if enabled {
			opts.Impersonate = fingerprint.ChromeProfile()
		}
		c, err := h2conn.Dial(nc, opts)
		if err != nil {
			b.Fatalf("h2 dial: %v", err)
		}
		defer func() { _ = c.Close() }()
		req := h2conn.Request{Authority: "bench.example", Path: "/about.html"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.FetchBody(req, 5*time.Second); err != nil {
				b.Fatalf("fetch %d: %v", i, err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, false) })
	b.Run("fingerprint", func(b *testing.B) { run(b, true) })
}
