package server

import (
	"errors"

	"h2scope/internal/frame"
)

// This file is the server's priority-aware egress scheduler: after each
// batch of handled frames, flushEgress drains as many response bytes as
// flow-control windows and the profile's scheduling mode allow, feeding
// coalesced HEADERS+DATA bursts through the framer's write buffer so a
// full scheduling pass reaches the wire in one write. Stream selection for
// SchedPriority follows the RFC 7540 section 5.3 dependency tree via
// internal/priority's smooth weighted round-robin; the other modes
// reproduce the partially-compliant behaviors of the paper's Table III.
//
// Everything here is steady-state per-request work and allocation-free:
// the //h2:hotpath roots below put the whole file under the hotalloc
// analyzer, and TestHotPathAllocs pins the dynamic complement at
// 0 allocs/op.

// flushEgress runs one egress scheduling pass: response headers first, then
// DATA quanta until windows or readiness run out.
//
//h2:hotpath — the egress entry point, run once per handled input batch.
func (c *conn) flushEgress() error {
	if err := c.flushHeaders(); err != nil {
		return err
	}
	return c.flushData()
}

// canSendHeaders applies the profile's (mis)behaviors that withhold
// response headers.
func (c *conn) canSendHeaders(st *stream) bool {
	p := &c.srv.profile
	if p.FlowControlHeaders {
		if st.window.Available() <= 0 || c.sendWindow.Available() <= 0 {
			return false
		}
	}
	if p.TinyWindow == TinyWindowSilent && len(st.body) > 0 &&
		st.window.Available() > 0 && st.window.Available() < tinyWindowThreshold {
		return false
	}
	return true
}

func (c *conn) flushHeaders() error {
	// Iterate a scratch copy: closeStream edits c.order in place when a
	// bodyless response ends its stream mid-loop.
	c.orderScratch = append(c.orderScratch[:0], c.order...)
	for _, st := range c.orderScratch {
		if st.respHeaders == nil || st.headersWritten || !c.canSendHeaders(st) {
			continue
		}
		c.encBuf = c.enc.AppendBlock(c.encBuf[:0], st.respHeaders)
		block := c.encBuf
		endStream := len(st.body) == 0
		// Split across CONTINUATION frames if the block exceeds the
		// client's maximum frame size.
		first := block
		var rest []byte
		if uint32(len(block)) > c.maxSendFrame {
			first, rest = block[:c.maxSendFrame], block[c.maxSendFrame:]
		}
		err := c.fr.WriteHeaders(frame.HeadersParams{
			StreamID:   st.id,
			Fragment:   first,
			EndStream:  endStream,
			EndHeaders: len(rest) == 0,
		})
		if err != nil {
			return err
		}
		for len(rest) > 0 {
			chunk := rest
			if uint32(len(chunk)) > c.maxSendFrame {
				chunk = chunk[:c.maxSendFrame]
			}
			rest = rest[len(chunk):]
			if err := c.fr.WriteContinuation(st.id, len(rest) == 0, chunk); err != nil {
				return err
			}
		}
		st.headersWritten = true
		if endStream {
			c.closeStream(st.id)
		}
	}
	return nil
}

// ready reports whether stream id can transmit at least one DATA byte.
// Streams stalled by the TinyWindowZeroData behavior are not ready: they
// emit empty DATA frames instead of real payload.
func (c *conn) ready(id uint32) bool {
	st, ok := c.streams[id]
	if !ok {
		return false
	}
	if !st.headersWritten || len(st.body) == 0 || st.window.Available() <= 0 {
		return false
	}
	if c.srv.profile.TinyWindow == TinyWindowZeroData {
		avail := st.window.Available()
		if avail < tinyWindowThreshold && avail < int64(len(st.body)) {
			return false
		}
	}
	return true
}

// readyFirst additionally requires that the stream has not yet transmitted
// its first DATA quantum — the SchedPriorityFirstOnly predicate.
func (c *conn) readyFirst(id uint32) bool {
	st, ok := c.streams[id]
	return ok && !st.firstSent && c.ready(id)
}

func (c *conn) flushData() error {
	p := &c.srv.profile
	c.noteEgressReady()
	for guard := 0; guard < 1<<20; guard++ {
		if c.sendWindow.Available() <= 0 {
			c.noteConnStall()
			return c.maybeZeroData()
		}
		st := c.pickStream(p.Scheduling)
		if st == nil {
			c.noteStreamStalls()
			return c.maybeZeroData()
		}
		if err := c.sendQuantum(st); err != nil {
			return err
		}
	}
	return errors.New("server: flush loop guard tripped")
}

// pickStream selects the next stream for one DATA quantum.
func (c *conn) pickStream(mode SchedulingMode) *stream {
	switch mode {
	case SchedPriority:
		if id, ok := c.sched.Pick(c.readyFn); ok {
			return c.streams[id]
		}
		return nil
	case SchedPriorityLastOnly:
		// One eager quantum per stream in arrival order first.
		for _, st := range c.order {
			if st.eager && c.ready(st.id) {
				st.eager = false
				return st
			}
		}
		if id, ok := c.sched.Pick(c.readyFn); ok {
			return c.streams[id]
		}
		return nil
	case SchedPriorityFirstOnly:
		// First quanta in priority order, then round-robin.
		if id, ok := c.sched.Pick(c.readyFirstFn); ok {
			return c.streams[id]
		}
		return c.pickRoundRobin()
	case SchedSequential:
		// One whole response at a time, in arrival order: the oldest
		// stream with pending data always wins, and when it is
		// window-blocked nothing else transmits (true head-of-line
		// serialization, the anti-pattern multiplexing removes).
		for _, st := range c.order {
			if !st.headersWritten || len(st.body) == 0 {
				continue
			}
			if c.ready(st.id) {
				return st
			}
			return nil
		}
		return nil
	default:
		return c.pickRoundRobin()
	}
}

func (c *conn) pickRoundRobin() *stream {
	order := c.order
	if len(order) == 0 {
		return nil
	}
	for i := 0; i < len(order); i++ {
		st := order[(c.rrCursor+i)%len(order)]
		if c.ready(st.id) {
			c.rrCursor = (c.rrCursor + i + 1) % len(order)
			return st
		}
	}
	return nil
}

// sendQuantum transmits one DATA frame for st, sized by both windows and
// the client's maximum frame size.
func (c *conn) sendQuantum(st *stream) error {
	n := int64(len(st.body))
	n = st.window.ClampTake(n)
	n = c.sendWindow.ClampTake(n)
	if n > int64(c.maxSendFrame) {
		n = int64(c.maxSendFrame)
	}
	if n <= 0 {
		return nil
	}
	chunk := st.body[:n]
	end := int(n) == len(st.body)
	if err := c.fr.WriteData(st.id, end, chunk); err != nil {
		return err
	}
	if err := st.window.Consume(n); err != nil {
		return err
	}
	if err := c.sendWindow.Consume(n); err != nil {
		return err
	}
	st.body = st.body[n:]
	st.firstSent = true
	if end {
		c.closeStream(st.id)
	}
	return nil
}

// maybeZeroData implements the TinyWindowZeroData population behavior:
// blocked streams with a sub-threshold window emit a single empty DATA
// frame per window state.
func (c *conn) maybeZeroData() error {
	if c.srv.profile.TinyWindow != TinyWindowZeroData {
		return nil
	}
	for _, st := range c.order {
		if !st.headersWritten || len(st.body) == 0 || st.zeroDataSent {
			continue
		}
		avail := st.window.Available()
		if avail >= tinyWindowThreshold || avail >= int64(len(st.body)) {
			continue
		}
		if err := c.fr.WriteData(st.id, false, nil); err != nil {
			return err
		}
		st.zeroDataSent = true
	}
	return nil
}
