package server

import (
	"strconv"
	"sync"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/metrics"
)

// Metrics is the server's pre-built instrument set. Like Trace it is shared
// by every connection the server handles; build it once per registry and
// assign it before serving.
type Metrics struct {
	framer *frame.Metrics

	connsAccepted *metrics.Counter
	activeConns   *metrics.Gauge

	streamsOpened  *metrics.Counter
	activeStreams  *metrics.Gauge
	streamDuration *metrics.Histogram

	stallsConn   *metrics.Counter
	stallsStream *metrics.Counter

	egressQueue *metrics.Gauge
	egressReady *metrics.Histogram

	// reg backs the dynamically labeled fingerprint counters; fpSeen
	// caches them per label pair so the hot path registers each
	// fingerprint once. The cache (and so the registry) is bounded:
	// past maxFingerprintSeries new pairs collapse into an overflow
	// series, keeping a hostile client from minting unbounded metrics.
	reg    *metrics.Registry
	fpMu   sync.Mutex
	fpSeen map[string]*metrics.Counter
}

// maxFingerprintSeries bounds distinct h2_client_fingerprints_total label
// pairs; a census hits a handful, a label-minting attacker hits the wall.
const maxFingerprintSeries = 256

// NewMetrics registers the server instrument set in r:
//
//	h2_server_conns_accepted_total       connections accepted
//	h2_server_active_conns               connections currently being served
//	h2_server_streams_opened_total       streams opened (request + push)
//	h2_server_active_streams             streams currently open
//	h2_server_stream_duration_ns         stream open-to-close wall time
//	h2_window_stalls_total{scope=...}    transitions into a window-blocked state
//	h2_client_fingerprints_total{ja4=...,h2fp=...}  connections per client fingerprint
//
// plus the shared framer set (h2_frames_*, h2_frame_bytes_*).
//
// A window stall is counted once per transition: when the server has response
// bytes pending but the connection-level (scope="conn") or a stream-level
// (scope="stream") send window is exhausted. The stalled state is re-armed by
// the WINDOW_UPDATE (or SETTINGS_INITIAL_WINDOW_SIZE increase) that unblocks
// it, so a long stall counts once, not once per flush pass.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		reg:    r,
		fpSeen: make(map[string]*metrics.Counter),
		framer: frame.NewMetrics(r),
		connsAccepted: r.Counter("h2_server_conns_accepted_total",
			"HTTP/2 connections accepted by the server"),
		activeConns: r.Gauge("h2_server_active_conns",
			"HTTP/2 connections currently being served"),
		streamsOpened: r.Counter("h2_server_streams_opened_total",
			"server streams opened (request and push)"),
		activeStreams: r.Gauge("h2_server_active_streams",
			"server streams currently open"),
		streamDuration: r.Histogram("h2_server_stream_duration_ns",
			"stream open-to-close wall time", int64(time.Microsecond), metrics.DefaultBuckets),
		stallsConn: r.Counter(metrics.Label("h2_window_stalls_total", "scope", "conn"),
			"transitions into a send-window-blocked state while response bytes were pending"),
		stallsStream: r.Counter(metrics.Label("h2_window_stalls_total", "scope", "stream"),
			"transitions into a send-window-blocked state while response bytes were pending"),
		egressQueue: r.Gauge("h2_egress_queue_depth",
			"streams with a queued response not yet fully transmitted"),
		egressReady: r.Histogram("h2_egress_ready_streams",
			"eligible ready streams per egress scheduling pass", 1, metrics.DefaultBuckets),
	}
}

// shardConns mints the per-shard connection gauge h2_shard_conns{shard=N}.
// The registry dedupes by name, so repeated calls return the same gauge.
func (m *Metrics) shardConns(shard int) *metrics.Gauge {
	return m.reg.Gauge(metrics.Label("h2_shard_conns", "shard", strconv.Itoa(shard)),
		"connections currently assigned to this accept/serve shard")
}

// fingerprintSeen counts one sealed client fingerprint under its JA4 and
// akamai-format h2 labels, minting the labeled counter on first sight.
func (m *Metrics) fingerprintSeen(ja4, akamai string) {
	key := ja4 + "\x00" + akamai
	m.fpMu.Lock()
	ctr, ok := m.fpSeen[key]
	if !ok {
		if len(m.fpSeen) >= maxFingerprintSeries {
			ja4, akamai = "overflow", "overflow"
			key = ja4 + "\x00" + akamai
		}
		if ctr, ok = m.fpSeen[key]; !ok {
			name := metrics.Label(metrics.Label("h2_client_fingerprints_total", "ja4", ja4), "h2fp", akamai)
			ctr = m.reg.Counter(name, "connections observed per client fingerprint")
			m.fpSeen[key] = ctr
		}
	}
	m.fpMu.Unlock()
	ctr.Inc()
}

// settleOnClose runs at connection teardown. Streams abandoned by a dying
// connection never pass through closeStream, so their active-stream gauge
// entries, queue-depth contributions, and open-to-close durations are
// settled here, along with the connection's own gauge.
func (c *conn) settleOnClose() {
	m := c.srv.Metrics
	if m == nil {
		return
	}
	for _, st := range c.streams {
		m.activeStreams.Add(-1)
		m.streamDuration.Observe(int64(time.Since(st.openedAt)))
		if st.queued {
			m.egressQueue.Add(-1)
		}
	}
	m.activeConns.Add(-1)
}

// noteQueued counts st into the egress queue-depth gauge on the transition
// into having a queued response. Idempotent per stream life.
func (c *conn) noteQueued(st *stream) {
	if st.queued {
		return
	}
	st.queued = true
	if m := c.srv.Metrics; m != nil {
		m.egressQueue.Add(1)
	}
}

// noteDequeued settles st's queue-depth contribution at stream close.
func (c *conn) noteDequeued(st *stream) {
	if !st.queued {
		return
	}
	st.queued = false
	if m := c.srv.Metrics; m != nil {
		m.egressQueue.Add(-1)
	}
}

// noteEgressReady observes the size of the scheduler's eligible set for the
// ready-stream histogram, once per egress pass.
func (c *conn) noteEgressReady() {
	m := c.srv.Metrics
	if m == nil {
		return
	}
	m.egressReady.Observe(int64(c.sched.Ready(c.readyFn)))
}

// pendingBody reports whether any stream has announced response bytes it has
// not yet transmitted — the precondition for a window stall to mean anything.
func (c *conn) pendingBody() bool {
	for _, st := range c.streams {
		if st.headersWritten && len(st.body) > 0 {
			return true
		}
	}
	return false
}

// noteConnStall counts the transition into a connection-window stall. Called
// from the flush path when the connection send window is exhausted.
func (c *conn) noteConnStall() {
	m := c.srv.Metrics
	if m == nil || c.connStalled || !c.pendingBody() {
		return
	}
	c.connStalled = true
	m.stallsConn.Inc()
}

// noteStreamStalls counts, per stream, the transition into a stream-window
// stall. Called from the flush path when no stream is ready even though the
// connection window has room.
func (c *conn) noteStreamStalls() {
	m := c.srv.Metrics
	if m == nil {
		return
	}
	for _, st := range c.streams {
		if st.stalled || !st.headersWritten || len(st.body) == 0 {
			continue
		}
		if st.window.Available() <= 0 {
			st.stalled = true
			m.stallsStream.Inc()
		}
	}
}
