package server

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2load"
	"h2scope/internal/metrics"
	"h2scope/internal/netsim"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// snapshotValue reads one instrument from the registry (0 if absent).
func snapshotValue(r *metrics.Registry, name string) int64 {
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	return 0
}

// shardGaugeSum totals every h2_shard_conns{shard=N} gauge.
func shardGaugeSum(r *metrics.Registry) (sum int64, series int) {
	for _, m := range r.Snapshot() {
		if strings.HasPrefix(m.Name, "h2_shard_conns{") {
			sum += m.Value
			series++
		}
	}
	return sum, series
}

// TestShardConnTracking holds raw connections open and checks the
// per-shard gauges account for every one of them, then settle to zero on
// teardown — the sharded replacement for the old global conn-table
// bookkeeping.
func TestShardConnTracking(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := New(NghttpdProfile(), DefaultSite("shard.example"))
	srv.Shards = 4
	srv.Metrics = NewMetrics(reg)
	l := netsim.NewListener("shard-track")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()

	const conns = 8
	ncs := make([]net.Conn, 0, conns)
	for i := 0; i < conns; i++ {
		nc, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		ncs = append(ncs, nc)
		fr := frame.NewFramer(nc, nc)
		if err := fr.WriteRawBytes([]byte(frame.ClientPreface)); err != nil {
			t.Fatal(err)
		}
		if err := fr.WriteSettings(); err != nil {
			t.Fatal(err)
		}
		if err := fr.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, 5*time.Second, func() bool {
		sum, _ := shardGaugeSum(reg)
		return sum == conns
	}, "shard gauges to count all connections")
	if got := snapshotValue(reg, "h2_server_conns_accepted_total"); got != conns {
		t.Errorf("conns accepted = %d, want %d", got, conns)
	}
	if _, series := shardGaugeSum(reg); series == 0 || series > 4 {
		t.Errorf("shard gauge series = %d, want 1..4", series)
	}

	for _, nc := range ncs {
		_ = nc.Close()
	}
	waitFor(t, 5*time.Second, func() bool {
		sum, _ := shardGaugeSum(reg)
		return sum == 0
	}, "shard gauges to settle to zero")
}

// TestShardedServeRaceHammer saturates a 4-shard server from 8 connections
// on 4 driver threads. Under -race this exercises the per-shard conn
// tables, the egress gauges, and the framer metrics concurrently; in any
// mode it proves the sharded accept path serves a full quota without
// errors and settles every gauge.
func TestShardedServeRaceHammer(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := New(NghttpdProfile(), DefaultSite("race.example"))
	srv.Shards = 4
	srv.Metrics = NewMetrics(reg)
	l := netsim.NewListener("shard-race")
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = srv.Serve(l)
	}()

	res, err := h2load.Run(func() (net.Conn, error) { return l.Dial() }, h2load.Options{
		Connections:    8,
		Threads:        4,
		StreamsPerConn: 4,
		Requests:       400,
		Authority:      "race.example",
		Path:           "/about.html",
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests != 400 || res.Errors != 0 {
		t.Fatalf("requests=%d errors=%d, want 400/0", res.Requests, res.Errors)
	}

	srv.Close()
	<-serveDone
	if sum, _ := shardGaugeSum(reg); sum != 0 {
		t.Errorf("shard conn gauges = %d after Close, want 0", sum)
	}
	if got := snapshotValue(reg, "h2_egress_queue_depth"); got != 0 {
		t.Errorf("egress queue depth = %d after Close, want 0", got)
	}
	if got := snapshotValue(reg, "h2_server_active_conns"); got != 0 {
		t.Errorf("active conns = %d after Close, want 0", got)
	}
	if got := snapshotValue(reg, "h2_server_conns_accepted_total"); got != 8 {
		t.Errorf("conns accepted = %d, want 8", got)
	}
}

// TestShutdownDrainsActiveShards opens connections across every shard,
// then checks Shutdown announces GOAWAY(NO_ERROR) to each of them and
// returns once the clients hang up — the graceful-drain contract under
// sharded conn tracking.
func TestShutdownDrainsActiveShards(t *testing.T) {
	reg := metrics.NewRegistry()
	srv := New(NghttpdProfile(), DefaultSite("drain.example"))
	srv.Shards = 4
	srv.Metrics = NewMetrics(reg)
	l := netsim.NewListener("shard-drain")
	go func() {
		_ = srv.Serve(l)
	}()

	const conns = 4
	type client struct {
		nc net.Conn
		fr *frame.Framer
	}
	clients := make([]*client, 0, conns)
	for i := 0; i < conns; i++ {
		nc, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		fr := frame.NewFramer(nc, nc)
		if err := fr.WriteRawBytes([]byte(frame.ClientPreface)); err != nil {
			t.Fatal(err)
		}
		if err := fr.WriteSettings(); err != nil {
			t.Fatal(err)
		}
		if err := fr.Flush(); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, &client{nc: nc, fr: fr})
	}
	waitFor(t, 5*time.Second, func() bool {
		return snapshotValue(reg, "h2_server_active_conns") == conns
	}, "server to track all connections")

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		srv.Shutdown(5 * time.Second)
	}()

	// Every connection, whatever shard tracks it, must see the GOAWAY.
	var wg sync.WaitGroup
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *client) {
			defer wg.Done()
			defer func() {
				_ = cl.nc.Close()
			}()
			for {
				f, err := cl.fr.ReadFrame()
				if err != nil {
					t.Errorf("connection closed before GOAWAY: %v", err)
					return
				}
				if ga, ok := f.(*frame.GoAwayFrame); ok {
					if ga.Code != frame.ErrCodeNo {
						t.Errorf("GOAWAY code = %v, want NO_ERROR", ga.Code)
					}
					return
				}
			}
		}(cl)
	}
	wg.Wait()

	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after clients hung up")
	}
	if got := snapshotValue(reg, "h2_server_active_conns"); got != 0 {
		t.Errorf("active conns = %d after Shutdown, want 0", got)
	}
}
