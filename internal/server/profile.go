// Package server implements a complete HTTP/2 origin server whose
// externally visible protocol behavior is configurable through a Profile.
//
// The paper characterizes six real server implementations (Nginx, LiteSpeed,
// H2O, nghttpd, Tengine, Apache v2016 releases) and finds they diverge on a
// specific, enumerable set of behaviors (Table III): whether flow control is
// (incorrectly) applied to HEADERS frames, how zero and overflowing
// WINDOW_UPDATE frames are answered, whether server push and priority
// scheduling are implemented, how self-dependent PRIORITY frames are
// handled, and whether response header fields are entered into the HPACK
// dynamic table. Each divergence is a Profile knob here, so one engine can
// faithfully stand in for all six servers — and for the long tail of
// behaviors the paper observes across the Alexa top 1M.
package server

import (
	"h2scope/internal/frame"
	"h2scope/internal/hpack"
)

// Reaction is how a server answers a protocol violation (or chooses not to).
type Reaction int

// Reactions a server may have to an erroneous frame.
const (
	// ReactIgnore silently discards the offending frame.
	ReactIgnore Reaction = iota + 1
	// ReactRSTStream answers with RST_STREAM on the affected stream.
	ReactRSTStream
	// ReactGoAway answers with GOAWAY and closes the connection.
	ReactGoAway
)

// String renders the reaction the way the paper's Table III does.
func (r Reaction) String() string {
	switch r {
	case ReactIgnore:
		return "ignore"
	case ReactRSTStream:
		return "RST_STREAM"
	case ReactGoAway:
		return "GOAWAY"
	default:
		return "unknown"
	}
}

// SchedulingMode selects how the server orders DATA frames across streams.
type SchedulingMode int

// Scheduling modes observed across deployed servers (Section V-E).
const (
	// SchedRoundRobin interleaves ready streams in arrival order, ignoring
	// the priority tree entirely. Nginx, LiteSpeed, and Tengine behave this
	// way ("fail" on the paper's Algorithm 1).
	SchedRoundRobin SchedulingMode = iota + 1
	// SchedPriority serves streams strictly by the RFC 7540 dependency
	// tree with weighted fair sharing among siblings. H2O, nghttpd, and
	// Apache behave this way ("pass").
	SchedPriority
	// SchedPriorityLastOnly emits one eager quantum per ready stream in
	// arrival order before switching to priority order. The *last* DATA
	// frame of each stream obeys the tree but the *first* does not —
	// the most common partially-compliant behavior in the wild (the
	// ~1,100 sites that pass only the last-DATA rule in Section V-E).
	SchedPriorityLastOnly
	// SchedPriorityFirstOnly emits first quanta in priority order, then
	// degrades to round-robin: first-DATA order obeys the tree, last-DATA
	// order does not (the small first-rule-only population).
	SchedPriorityFirstOnly
	// SchedSequential serves one whole response at a time in arrival
	// order — a server that accepts concurrent streams but does not
	// actually multiplex them. No testbed server behaves this way; the
	// mode exists to validate that the multiplexing probe can detect the
	// absence of interleaving (Section III-A.1's negative case).
	SchedSequential
)

// String returns a short name for the mode.
func (m SchedulingMode) String() string {
	switch m {
	case SchedRoundRobin:
		return "round-robin"
	case SchedPriority:
		return "priority"
	case SchedPriorityLastOnly:
		return "priority-last-only"
	case SchedPriorityFirstOnly:
		return "priority-first-only"
	case SchedSequential:
		return "sequential"
	default:
		return "unknown"
	}
}

// TinyWindowBehavior selects what the server does when the client pins
// SETTINGS_INITIAL_WINDOW_SIZE to a very small value (Section V-D.1).
type TinyWindowBehavior int

// Behaviors observed when the client advertises a 1-byte stream window.
const (
	// TinyWindowComply sends DATA frames sized exactly to the window
	// (37,525 / 44,204 sites; all six testbed servers).
	TinyWindowComply TinyWindowBehavior = iota + 1
	// TinyWindowZeroData sends zero-length DATA frames (2,433 / 8,056 sites).
	TinyWindowZeroData
	// TinyWindowSilent sends no response at all (4,432 / 12,039 sites,
	// predominantly LiteSpeed deployments).
	TinyWindowSilent
)

// Profile enumerates every externally visible behavior the paper measures.
type Profile struct {
	// Name is the value of the "server" response header (e.g. "nginx/1.9.15").
	Name string
	// Family is the implementation family used for per-server aggregation
	// in the paper's figures (e.g. "nginx", "litespeed", "GSE").
	Family string

	// SupportsALPN and SupportsNPN control TLS protocol negotiation.
	// RFC 7540 requires ALPN; NPN is legacy (Apache lacks it).
	SupportsALPN bool
	SupportsNPN  bool

	// --- SETTINGS advertisement (Tables V, VI, VII; Figure 2) ---

	// OmitSettings, when set, sends an empty SETTINGS frame (the "NULL"
	// rows of Tables V-VII).
	OmitSettings bool
	// HeaderTableSize is the advertised SETTINGS_HEADER_TABLE_SIZE.
	HeaderTableSize uint32
	// MaxConcurrentStreams is the advertised and enforced limit on
	// concurrent client-initiated streams. AdvertiseMaxStreams gates
	// whether the setting is sent at all.
	MaxConcurrentStreams uint32
	AdvertiseMaxStreams  bool
	// InitialWindowSize is the advertised SETTINGS_INITIAL_WINDOW_SIZE.
	InitialWindowSize uint32
	// ConnWindowBoost, when nonzero, is sent as an immediate
	// connection-level WINDOW_UPDATE right after SETTINGS — the
	// Nginx-style "advertise 0, then WINDOW_UPDATE" pattern the paper
	// observes under Table V.
	ConnWindowBoost uint32
	// StreamWindowBoost, when nonzero, is sent as a stream-level
	// WINDOW_UPDATE for every newly opened request stream.
	StreamWindowBoost uint32
	// MaxFrameSize is the advertised SETTINGS_MAX_FRAME_SIZE.
	MaxFrameSize uint32
	// MaxHeaderListSize is the advertised SETTINGS_MAX_HEADER_LIST_SIZE;
	// 0 means "unlimited" (the setting is omitted, the RFC suggestion).
	MaxHeaderListSize uint32

	// --- Flow control (Table III rows 4-9; Section V-D) ---

	// FlowControlHeaders applies flow control to HEADERS frames, which
	// RFC 7540 forbids. LiteSpeed does this: with a zero or drained
	// window it withholds even the response headers.
	FlowControlHeaders bool
	// TinyWindow selects the response style under a 1-byte stream window.
	TinyWindow TinyWindowBehavior
	// ZeroWindowUpdateStream is the reaction to WINDOW_UPDATE(stream, 0).
	// RFC 7540 calls for RST_STREAM.
	ZeroWindowUpdateStream Reaction
	// ZeroWindowUpdateConn is the reaction to WINDOW_UPDATE(conn, 0).
	// RFC 7540 calls for GOAWAY.
	ZeroWindowUpdateConn Reaction
	// ZeroWindowDebugData, when set, includes explanatory text in the
	// GOAWAY debug-data field (the 26/42 sites of Section V-D.3).
	ZeroWindowDebugData bool
	// LargeWindowUpdateStream is the reaction to a stream window pushed
	// past 2^31-1 (RFC: RST_STREAM).
	LargeWindowUpdateStream Reaction
	// LargeWindowUpdateConn is the reaction to the connection window
	// pushed past 2^31-1 (RFC: GOAWAY).
	LargeWindowUpdateConn Reaction

	// --- Priority (Table III rows 10-12; Section V-E) ---

	// Scheduling selects DATA ordering across streams.
	Scheduling SchedulingMode
	// SelfDependency is the reaction to a PRIORITY frame that makes a
	// stream depend on itself. RFC 7540 calls for RST_STREAM.
	SelfDependency Reaction

	// --- Server push (Table III row 10; Section V-F) ---

	// EnablePush turns on PUSH_PROMISE for resources with a push manifest.
	EnablePush bool

	// --- HPACK (Table III row 13; Figs. 4, 5) ---

	// HPACKPolicy selects response-header indexing. PolicyNoDynamicInsert
	// reproduces the Nginx/Tengine "support*" behavior.
	HPACKPolicy hpack.IndexingPolicy
	// HPACKPartialFraction is the indexed-name fraction used with
	// PolicyIndexPartial; ignored otherwise. HPACKPartialSalt varies which
	// names fall in the indexed subset.
	HPACKPartialFraction float64
	HPACKPartialSalt     uint32

	// --- PING (Table III row 14) ---

	// AnswerPing controls PING ACK generation (all testbed servers comply).
	AnswerPing bool
	// PingDelay models server-side processing latency added to PING
	// responses; zero for all real profiles.
	PingDelay int

	// --- Fingerprinting (beyond the paper: passive client census) ---

	// FingerprintAdaptive makes the server's behavior depend on the
	// client's HTTP/2 behavioral fingerprint: once the first request
	// seals the fingerprint and it matches a known client profile, the
	// server re-tunes SETTINGS_MAX_CONCURRENT_STREAMS by client class
	// (browsers high, automation tools low). Off for all real-server
	// profiles; the census and conformance suite use it as the positive
	// control for fingerprint-conditional serving.
	FingerprintAdaptive bool
}

// settings renders the profile's SETTINGS frame payload.
func (p *Profile) settings() []frame.Setting {
	if p.OmitSettings {
		return nil
	}
	var out []frame.Setting
	if p.HeaderTableSize != frame.DefaultHeaderTableSize {
		out = append(out, frame.Setting{ID: frame.SettingHeaderTableSize, Val: p.HeaderTableSize})
	}
	if p.AdvertiseMaxStreams {
		out = append(out, frame.Setting{ID: frame.SettingMaxConcurrentStreams, Val: p.MaxConcurrentStreams})
	}
	if p.InitialWindowSize != frame.DefaultInitialWindowSize {
		out = append(out, frame.Setting{ID: frame.SettingInitialWindowSize, Val: p.InitialWindowSize})
	}
	if p.MaxFrameSize != frame.DefaultMaxFrameSize {
		out = append(out, frame.Setting{ID: frame.SettingMaxFrameSize, Val: p.MaxFrameSize})
	}
	if p.MaxHeaderListSize != 0 {
		out = append(out, frame.Setting{ID: frame.SettingMaxHeaderListSize, Val: p.MaxHeaderListSize})
	}
	return out
}

// base returns the knobs shared by a fully RFC-compliant server; the six
// testbed constructors override from here.
func base(name, family string) Profile {
	return Profile{
		Name:                    name,
		Family:                  family,
		SupportsALPN:            true,
		SupportsNPN:             true,
		HeaderTableSize:         frame.DefaultHeaderTableSize,
		MaxConcurrentStreams:    128,
		AdvertiseMaxStreams:     true,
		InitialWindowSize:       frame.DefaultInitialWindowSize,
		MaxFrameSize:            frame.DefaultMaxFrameSize,
		TinyWindow:              TinyWindowComply,
		ZeroWindowUpdateStream:  ReactRSTStream,
		ZeroWindowUpdateConn:    ReactGoAway,
		LargeWindowUpdateStream: ReactRSTStream,
		LargeWindowUpdateConn:   ReactGoAway,
		Scheduling:              SchedPriority,
		SelfDependency:          ReactRSTStream,
		HPACKPolicy:             hpack.PolicyIndexAll,
		AnswerPing:              true,
	}
}

// NginxProfile reproduces Nginx v1.9.15 as characterized in Table III:
// round-robin scheduling (priority test fails), no push, zero window
// updates ignored at both levels, RST_STREAM on self-dependency, and no
// dynamic-table indexing of response headers ("support*" HPACK). Nginx also
// advertises a zero initial window and immediately reopens it with
// WINDOW_UPDATE frames (Table V).
func NginxProfile() Profile {
	p := base("nginx/1.9.15", "nginx")
	p.MaxConcurrentStreams = 128
	p.InitialWindowSize = 0
	p.ConnWindowBoost = 2147418112 // 2^31 - 1 - 65,535: reopen to the max
	p.StreamWindowBoost = 2147418112
	p.ZeroWindowUpdateStream = ReactIgnore
	p.ZeroWindowUpdateConn = ReactIgnore
	p.Scheduling = SchedRoundRobin
	p.SelfDependency = ReactRSTStream
	p.EnablePush = false
	p.HPACKPolicy = hpack.PolicyNoDynamicInsert
	return p
}

// LiteSpeedProfile reproduces LiteSpeed v5.0.11: the only testbed server
// that applies flow control to HEADERS frames, ignores self-dependent
// PRIORITY frames, answers zero stream window updates with RST_STREAM, and
// does not push.
func LiteSpeedProfile() Profile {
	p := base("LiteSpeed", "litespeed")
	p.MaxConcurrentStreams = 100
	p.FlowControlHeaders = true
	p.ZeroWindowUpdateStream = ReactRSTStream
	p.ZeroWindowUpdateConn = ReactGoAway
	p.Scheduling = SchedRoundRobin
	p.SelfDependency = ReactIgnore
	p.EnablePush = false
	return p
}

// H2OProfile reproduces H2O v1.6.2: priority scheduling passes, push is
// supported, zero stream window update answered with RST_STREAM, and
// self-dependency treated (non-compliantly) as a connection error.
func H2OProfile() Profile {
	p := base("h2o/1.6.2", "h2o")
	p.MaxConcurrentStreams = 100
	p.ZeroWindowUpdateStream = ReactRSTStream
	p.ZeroWindowUpdateConn = ReactGoAway
	p.Scheduling = SchedPriority
	p.SelfDependency = ReactGoAway
	p.EnablePush = true
	p.InitialWindowSize = 1048576
	return p
}

// NghttpdProfile reproduces nghttpd v1.12.0: priority scheduling passes,
// push is supported, and zero window updates at *either* level are answered
// with GOAWAY (stream-level GOAWAY is non-compliant).
func NghttpdProfile() Profile {
	p := base("nghttpd nghttp2/1.12.0", "nghttpd")
	p.MaxConcurrentStreams = 100
	p.ZeroWindowUpdateStream = ReactGoAway
	p.ZeroWindowUpdateConn = ReactGoAway
	p.Scheduling = SchedPriority
	p.SelfDependency = ReactGoAway
	p.EnablePush = true
	return p
}

// TengineProfile reproduces Tengine v2.1.2, the Alibaba Nginx fork; its
// HTTP/2 behavior tracks Nginx.
func TengineProfile() Profile {
	p := NginxProfile()
	p.Name = "Tengine"
	p.Family = "tengine"
	return p
}

// ApacheProfile reproduces Apache httpd v2.4.23 (mod_http2): the only
// testbed server without NPN, priority scheduling passes, push is
// supported, zero window updates answered with GOAWAY at both levels, and
// self-dependency treated as a connection error.
func ApacheProfile() Profile {
	p := base("Apache/2.4.23", "apache")
	p.SupportsNPN = false
	p.MaxConcurrentStreams = 100
	p.ZeroWindowUpdateStream = ReactGoAway
	p.ZeroWindowUpdateConn = ReactGoAway
	p.Scheduling = SchedPriority
	p.SelfDependency = ReactGoAway
	p.EnablePush = true
	return p
}

// TestbedProfiles returns the six server profiles of the paper's testbed in
// Table III column order.
func TestbedProfiles() []Profile {
	return []Profile{
		NginxProfile(),
		LiteSpeedProfile(),
		H2OProfile(),
		NghttpdProfile(),
		TengineProfile(),
		ApacheProfile(),
	}
}
