package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"h2scope/internal/fingerprint"
	"h2scope/internal/flowcontrol"
	"h2scope/internal/frame"
	"h2scope/internal/hpack"
	"h2scope/internal/priority"
	"h2scope/internal/trace"
)

// fixedDate keeps response header bytes deterministic across runs; the
// HPACK-ratio experiment depends on responses being byte-identical.
const fixedDate = "Tue, 05 Jul 2016 10:00:00 GMT"

// tinyWindowThreshold is the stream-window size below which the
// TinyWindowZeroData and TinyWindowSilent behaviors trigger.
const tinyWindowThreshold = 64

// maxHeaderBlockBytes bounds the accumulated HEADERS+CONTINUATION fragment
// for one header block. Without it a peer can stream CONTINUATION frames
// forever, growing the buffer unboundedly while the connection makes no
// progress (the CONTINUATION-flood attack); past the bound the connection is
// torn down with ENHANCE_YOUR_CALM.
const maxHeaderBlockBytes = 256 << 10

// defaultMaxHeaderListBytes caps the *decoded* size of one header block
// when the profile does not advertise SETTINGS_MAX_HEADER_LIST_SIZE. A
// few-KiB HPACK bomb expands thousandsfold through dynamic-table
// references, so the cap is enforced by the decoder during expansion and
// surfaces as a COMPRESSION_ERROR connection error.
const defaultMaxHeaderListBytes = 256 << 10

// Server is an HTTP/2 origin server for one Site, with behavior selected by
// a Profile.
type Server struct {
	profile Profile
	site    *Site
	routes  *routeTable

	// Logf, when non-nil, receives debug lines.
	Logf func(format string, args ...any)

	// Trace, when non-nil, receives frame-level trace events for every
	// connection the server handles (a fresh trace connection ID per
	// accepted conn). Set it before serving; like Logf it is not guarded
	// by a lock.
	Trace *trace.Tracer

	// Metrics, when non-nil, receives instrument bumps from every
	// connection the server handles (see NewMetrics for the catalog). Set
	// it before serving; like Trace it is not guarded by a lock.
	Metrics *Metrics

	// DisableFingerprint turns off the passive client-fingerprinting
	// plane: no behavioral assembly, no metrics, and an empty /fp echo.
	DisableFingerprint bool

	// HelloSource, when non-nil, resolves the TLS ClientHello for a served
	// conn that does not itself implement tlsutil.HelloConn — the
	// tlsutil.HelloCapture fallback path. Set it before serving.
	HelloSource func(net.Conn) *fingerprint.ClientHello

	// Shards selects the number of accept/serve shards — independent conn
	// tables, each with its own lock and per-listener accept goroutine —
	// that the connection-tracking plane is split across. Zero means
	// GOMAXPROCS (capped at 16). Set it before serving.
	Shards int

	mu     sync.Mutex
	lis    []net.Listener
	closed bool
	wg     sync.WaitGroup

	shardOnce sync.Once
	shards    []*serverShard
	nextShard atomic.Uint32

	// det is the attack detector, when StartDetector attached one.
	det *Detector
}

// New returns a server for site with the given behavior profile. The site's
// document tree is compiled into the zero-alloc dispatch table here; build
// the site fully before calling New.
func New(p Profile, site *Site) *Server {
	return &Server{
		profile: p,
		site:    site,
		routes:  buildRoutes(&p, site),
	}
}

// Profile returns the server's behavior profile.
func (s *Server) Profile() Profile { return s.profile }

// Site returns the server's document tree.
func (s *Server) Site() *Site { return s.site }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections from l until the listener fails or Close is
// called. One accept goroutine runs per shard, each feeding its own conn
// table, so accepted connections stripe across shards and connection
// registration never contends on a global lock.
func (s *Server) Serve(l net.Listener) error {
	s.shardInit()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: closed")
	}
	s.lis = append(s.lis, l)
	s.mu.Unlock()

	errc := make(chan error, len(s.shards))
	for _, sh := range s.shards[1:] {
		go func(sh *serverShard) { errc <- s.acceptLoop(l, sh) }(sh)
	}
	first := s.acceptLoop(l, s.shards[0])
	for range s.shards[1:] {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops all listeners and waits for in-flight connections.
func (s *Server) Close() {
	s.shardInit()
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.lis = nil
	s.mu.Unlock()
	for _, l := range lis {
		_ = l.Close()
	}
	s.closeShards()
	s.wg.Wait()
	s.detector().Stop()
}

// detector returns the attached attack detector, or nil.
func (s *Server) detector() *Detector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.det
}

// Shutdown closes gracefully (RFC 7540 section 6.8): listeners stop
// accepting, every live connection receives GOAWAY(NO_ERROR), and
// connections that have not wound down after the grace period are closed
// forcibly. Shutdown blocks until all connections ended.
func (s *Server) Shutdown(grace time.Duration) {
	s.shardInit()
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.lis = nil
	s.mu.Unlock()
	for _, l := range lis {
		_ = l.Close()
	}
	conns := s.closeShards()
	for _, c := range conns {
		// The framer serializes writes, so announcing shutdown from here
		// is safe alongside the connection's own goroutine. The explicit
		// Flush pushes the GOAWAY past the coalescing buffer while the
		// serve loop may be blocked in ReadFrame.
		if c.fr.WriteGoAway(c.maxClientStream(), frame.ErrCodeNo, []byte("server shutting down")) == nil {
			_ = c.fr.Flush()
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		for _, c := range conns {
			_ = c.nc.Close()
		}
		<-done
	}
}

// ServeConn serves one already-established connection (TCP, TLS, or an
// in-process pipe) and blocks until it ends. The connection is assigned to
// a shard round-robin.
func (s *Server) ServeConn(nc net.Conn) error {
	s.shardInit()
	return s.serveConnOn(nc, s.pickShard())
}

// newConn builds the per-connection state for nc.
func newConn(s *Server, nc net.Conn) *conn {
	br := bufio.NewReaderSize(nc, 8<<10)
	c := &conn{
		srv:           s,
		nc:            nc,
		br:            br,
		fr:            newServerFramer(nc, br),
		enc:           newResponseEncoder(&s.profile),
		dec:           hpack.NewDecoder(hpack.DefaultDynamicTableSize),
		streams:       make(map[uint32]*stream),
		sendWindow:    flowcontrol.New(flowcontrol.DefaultWindow),
		recvWindow:    flowcontrol.New(flowcontrol.DefaultWindow),
		clientInitWin: frame.DefaultInitialWindowSize,
		maxSendFrame:  frame.DefaultMaxFrameSize,
		clientMaxConc: ^uint32(0),
		pushEnabled:   true,
		tree:          priority.NewTree(),
		nextPushID:    2,
	}
	c.sched = priority.NewScheduler(c.tree)
	// Bind the scheduling predicates once: passing c.ready as a method
	// value mints a fresh closure per call, which the zero-alloc egress
	// path cannot afford.
	c.readyFn = c.ready
	c.readyFirstFn = c.readyFirst
	return c
}

// serveConnOn serves nc on shard sh.
func (s *Server) serveConnOn(nc net.Conn, sh *serverShard) error {
	defer func() {
		_ = nc.Close()
	}()
	c := newConn(s, nc)
	c.fpInit(nc)
	// Bound decoded header blocks (the HPACK-bomb guard): the advertised
	// SETTINGS_MAX_HEADER_LIST_SIZE when the profile has one, a defensive
	// default otherwise.
	if limit := s.profile.MaxHeaderListSize; limit > 0 {
		c.dec.SetMaxHeaderListSize(limit)
	} else {
		c.dec.SetMaxHeaderListSize(defaultMaxHeaderListBytes)
	}
	if s.Metrics != nil {
		// Install the framer hook before serve() starts reading; the framer
		// is single-threaded at this point.
		c.fr.SetMetrics(s.Metrics.framer)
		s.Metrics.connsAccepted.Inc()
		s.Metrics.activeConns.Add(1)
		defer c.settleOnClose()
	}
	if s.Trace != nil {
		id := s.Trace.ConnID()
		// The hook must be in place before serve() starts reading; the
		// framer is single-threaded at this point.
		c.fr.SetTrace(func(sent bool, hdr frame.Header) {
			s.Trace.Frame(id, sent, hdr)
		})
		c.traceErr = func(detail string) { s.Trace.Error(id, detail) }
		s.Trace.ConnOpen(id, nc.RemoteAddr().String())
		defer func() { s.Trace.ConnClose(id, "") }()
		if d := s.detector(); d != nil {
			// Register for mitigation under the same trace conn ID the
			// detector sees in the event stream.
			d.register(id, c)
			defer d.unregister(id)
		}
	}
	if !sh.track(c) {
		return errors.New("server: closed")
	}
	defer sh.untrack(c)
	return c.serve()
}

// stream is one server-side stream with a pending or in-flight response.
// Streams are pooled per connection: closeStream recycles them onto the
// conn's freelist and openStream reuses them, retaining the grown header
// buffers, so the steady-state request/response cycle allocates nothing.
type stream struct {
	id uint32
	// pushed marks server-initiated (even-ID) streams.
	pushed bool
	// window is the server's send window for this stream, embedded by value
	// so pooled reuse re-arms it with Reset instead of reallocating.
	window flowcontrol.Window
	// reqHeaders is the decoded request header list, copied from the conn's
	// decode scratch into stream-owned (pool-retained) backing.
	reqHeaders []hpack.HeaderField
	// reqDone is set once the client half-closed (END_STREAM seen).
	reqDone bool
	// respHeaders is the response header list. On the fast path it aliases
	// the precomputed route table and must never be mutated.
	respHeaders []hpack.HeaderField
	// body is the unsent remainder of the response payload.
	body []byte
	// headersWritten is set once the response HEADERS frame went out.
	headersWritten bool
	// responded is set once a response has been generated for the request.
	responded bool
	// eager marks one pending arrival-order quantum for the
	// SchedPriorityLastOnly mode.
	eager bool
	// firstSent is set once the first DATA quantum went out (the
	// SchedPriorityFirstOnly predicate).
	firstSent bool
	// queued tracks the stream's contribution to the egress queue-depth
	// gauge: set when a response is queued, settled at close.
	queued bool
	// zeroDataSent throttles the TinyWindowZeroData behavior to one empty
	// frame per window state.
	zeroDataSent bool
	// stalled marks a counted stream-window stall; re-armed when the window
	// grows, so each blocked period counts once.
	stalled bool
	// openedAt feeds the stream-duration histogram; zero without Metrics.
	openedAt time.Time
	// headerFragment accumulates CONTINUATION payloads for this stream.
	headerFragment []byte
	headerDone     bool
	headerEnd      bool
	// poolNext links the conn's stream freelist.
	poolNext *stream
}

// reset clears st for pooled reuse, keeping the grown reqHeaders and
// headerFragment backing arrays.
func (st *stream) reset(id uint32, pushed bool) {
	*st = stream{
		id:             id,
		pushed:         pushed,
		reqHeaders:     st.reqHeaders[:0],
		headerFragment: st.headerFragment[:0],
	}
}

type conn struct {
	srv *Server
	nc  net.Conn
	// br buffers reads from nc; the serve loop peeks it to defer the wire
	// flush while further complete frames are already buffered, so a burst
	// of pipelined requests is answered with one write.
	br  *bufio.Reader
	fr  *frame.Framer
	enc *hpack.Encoder
	dec *hpack.Decoder
	// encBuf is the HPACK encode scratch buffer, reused across response
	// header blocks; only the serve goroutine touches it (Shutdown's
	// cross-goroutine GOAWAY never encodes headers).
	encBuf []byte
	// decFields is the HPACK decode scratch: header blocks decode into it
	// and are copied to the stream's own backing before the next decode.
	decFields []hpack.HeaderField

	streams map[uint32]*stream
	// order holds the open streams in arrival order — the maintained
	// replacement for sorting streams per scheduling pass. openStream
	// appends, closeStream removes in place.
	order []*stream
	// orderScratch is the iteration copy for passes that close streams
	// mid-loop.
	orderScratch []*stream
	// streamPool is the freelist of recycled stream objects, linked through
	// stream.poolNext.
	streamPool *stream
	rrCursor   int

	// readyFn and readyFirstFn are the scheduling predicates bound once at
	// conn setup (method values allocate per use).
	readyFn      func(uint32) bool
	readyFirstFn func(uint32) bool

	sendWindow *flowcontrol.Window
	recvWindow *flowcontrol.Window

	// clientInitWin tracks the client's SETTINGS_INITIAL_WINDOW_SIZE, the
	// initial send window for new streams.
	clientInitWin int64
	maxSendFrame  uint32
	clientMaxConc uint32
	pushEnabled   bool

	tree  *priority.Tree
	sched *priority.Scheduler

	nextPushID uint32
	pushOpen   int
	clientOpen int
	goingAway  bool
	// connStalled marks a counted connection-window stall; re-armed by the
	// WINDOW_UPDATE that unblocks it.
	connStalled bool
	// contStream, when nonzero, is the stream whose header block is being
	// continued.
	contStream uint32

	// traceErr, when non-nil, records a connection error on the trace bus
	// (the detector corroborates HPACK-bomb scoring with it).
	traceErr func(detail string)

	// Detector mitigation state, written by the detector goroutine and read
	// by the serve goroutine, hence atomic. readDelay (ns) throttles the
	// read loop between frames; streamCap, when nonzero, overrides the
	// profile's concurrent-stream limit downward; maxSeenClient mirrors the
	// highest client stream ID for cross-goroutine GOAWAY (maxClientStream
	// walks c.streams, which only the serve goroutine may touch); killed
	// makes the GOAWAY+close mitigation idempotent.
	readDelay     atomic.Int64
	streamCap     atomic.Int64
	maxSeenClient atomic.Uint32
	killed        atomic.Bool

	// Fingerprint plane (see fingerprint.go). fpa and helloFn are touched
	// only by the serve goroutine; fpAkamai publishes the sealed akamai
	// string for the detector goroutine to label detections with.
	fpa      *fingerprint.H2Assembler
	helloFn  func() *fingerprint.ClientHello
	fpAkamai atomic.Pointer[string]
}

// mitigateRateLimit throttles the connection's read loop: the serve
// goroutine sleeps d between frames. Safe from any goroutine.
func (c *conn) mitigateRateLimit(d time.Duration) { c.readDelay.Store(int64(d)) }

// mitigateStreamCap refuses new streams beyond n (RST_STREAM with
// REFUSED_STREAM), regardless of the profile's advertised limit. Safe from
// any goroutine.
func (c *conn) mitigateStreamCap(n int64) { c.streamCap.Store(n) }

// mitigateGoAway sends GOAWAY(ENHANCE_YOUR_CALM) and closes the socket.
// The framer serializes writes (see Shutdown), so emitting from the
// detector goroutine is safe alongside the serve loop; closing the socket
// then unblocks a serve loop parked in ReadFrame.
func (c *conn) mitigateGoAway() {
	if c.killed.Swap(true) {
		return
	}
	if c.fr.WriteGoAway(c.maxSeenClient.Load(), frame.ErrCodeEnhanceYourCalm, []byte("attack mitigated")) == nil {
		_ = c.fr.Flush()
	}
	_ = c.nc.Close()
}

// newServerFramer builds the per-connection framer with write coalescing
// enabled: the serve loop flushes once per handled input batch, so a burst
// of response frames (HEADERS+DATA fan-out across streams) reaches the wire
// in a single write instead of one write per frame. Reads go through the
// connection's buffered reader so the serve loop can see whether further
// frames are already pending.
func newServerFramer(w io.Writer, r io.Reader) *frame.Framer {
	fr := frame.NewFramer(w, r)
	fr.SetWriteBuffering(0)
	return fr
}

func newResponseEncoder(p *Profile) *hpack.Encoder {
	if p.HPACKPolicy == hpack.PolicyIndexPartial {
		return hpack.NewPartialEncoder(p.HPACKPartialFraction, p.HPACKPartialSalt)
	}
	return hpack.NewEncoder(p.HPACKPolicy)
}

func (c *conn) serve() error {
	if err := c.readPreface(); err != nil {
		return err
	}
	if err := c.fr.WriteSettings(c.srv.profile.settings()...); err != nil {
		return err
	}
	if boost := c.srv.profile.ConnWindowBoost; boost > 0 {
		if err := c.fr.WriteWindowUpdate(0, boost); err != nil {
			return err
		}
		// Track our own receive window so incoming DATA accounting stays
		// consistent with what we advertised.
		_ = c.recvWindow.Increase(boost)
	}
	// SETTINGS and the optional window boost coalesce into one write.
	if err := c.fr.Flush(); err != nil {
		return err
	}
	for {
		// Detector rate-limit mitigation: pace the read loop.
		if d := c.readDelay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		stop, err := c.step()
		if stop || err != nil {
			return err
		}
	}
}

// step reads and handles one frame. When the read buffer holds no further
// complete frame, it also runs the egress scheduler and flushes the batch
// to the wire — so a burst of pipelined input frames is answered with one
// scheduling pass and one write.
func (c *conn) step() (stop bool, _ error) {
	f, err := c.fr.ReadFrame()
	if err != nil {
		var ce frame.ConnError
		if errors.As(err, &ce) {
			_ = c.goAway(ce.Code, ce.Reason)
			return true, nil
		}
		var se frame.StreamError
		if errors.As(err, &se) {
			if c.fr.WriteRSTStream(se.StreamID, se.Code) == nil {
				_ = c.fr.Flush()
			}
			return false, nil
		}
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return true, nil
		}
		return true, err
	}
	if err := c.handleFrame(f); err != nil {
		var ce frame.ConnError
		if errors.As(err, &ce) {
			_ = c.goAway(ce.Code, ce.Reason)
			return true, nil
		}
		return true, err
	}
	if c.goingAway {
		return true, c.fr.Flush()
	}
	if c.frameBuffered() {
		// More input is already here: keep handling before scheduling
		// egress, so the whole batch coalesces into one write.
		return false, nil
	}
	if err := c.flushEgress(); err != nil {
		return true, err
	}
	return false, c.fr.Flush()
}

// frameBuffered reports whether the read buffer already holds one complete
// frame. It never blocks: the peek only runs when the header is already
// buffered, and a frame larger than the buffer window simply reports false
// (the flush happens, then the read path blocks as usual).
func (c *conn) frameBuffered() bool {
	if c.br.Buffered() < frame.HeaderLen {
		return false
	}
	hdr, err := c.br.Peek(frame.HeaderLen)
	if err != nil {
		return false
	}
	payload := int(hdr[0])<<16 | int(hdr[1])<<8 | int(hdr[2])
	return c.br.Buffered() >= frame.HeaderLen+payload
}

func (c *conn) readPreface() error {
	buf := make([]byte, len(frame.ClientPreface))
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return fmt.Errorf("server: reading preface: %w", err)
	}
	if string(buf) != frame.ClientPreface {
		return errors.New("server: bad client preface")
	}
	return nil
}

// goAway emits GOAWAY and marks the connection for teardown. It flushes,
// since every caller tears the connection down right after.
func (c *conn) goAway(code frame.ErrCode, debug string) error {
	c.goingAway = true
	if c.traceErr != nil && code != frame.ErrCodeNo {
		c.traceErr(debug)
	}
	var debugData []byte
	if debug != "" {
		debugData = []byte(debug)
	}
	if err := c.fr.WriteGoAway(c.maxClientStream(), code, debugData); err != nil {
		return err
	}
	return c.fr.Flush()
}

func (c *conn) maxClientStream() uint32 {
	var maxID uint32
	for id := range c.streams {
		if id%2 == 1 && id > maxID {
			maxID = id
		}
	}
	return maxID
}

func (c *conn) handleFrame(f frame.Frame) error {
	if c.contStream != 0 {
		cf, ok := f.(*frame.ContinuationFrame)
		if !ok || cf.Header().StreamID != c.contStream {
			return frame.ConnError{Code: frame.ErrCodeProtocol, Reason: "expected CONTINUATION"}
		}
	}
	switch f := f.(type) {
	case *frame.SettingsFrame:
		return c.handleSettings(f)
	case *frame.HeadersFrame:
		return c.handleHeaders(f)
	case *frame.ContinuationFrame:
		return c.handleContinuation(f)
	case *frame.DataFrame:
		return c.handleData(f)
	case *frame.PriorityFrame:
		return c.handlePriority(f)
	case *frame.WindowUpdateFrame:
		return c.handleWindowUpdate(f)
	case *frame.PingFrame:
		return c.handlePing(f)
	case *frame.RSTStreamFrame:
		c.closeStream(f.Header().StreamID)
		return nil
	case *frame.GoAwayFrame:
		c.goingAway = true
		return nil
	case *frame.PushPromiseFrame:
		return frame.ConnError{Code: frame.ErrCodeProtocol, Reason: "client sent PUSH_PROMISE"}
	default:
		// Unknown frame types must be ignored (RFC 7540 section 4.1).
		return nil
	}
}

func (c *conn) handleSettings(f *frame.SettingsFrame) error {
	if f.IsAck() {
		return nil
	}
	c.fpOnSettings(f.Settings)
	for _, s := range f.Settings {
		if err := s.Valid(); err != nil {
			return err
		}
		switch s.ID {
		case frame.SettingInitialWindowSize:
			delta := int64(s.Val) - c.clientInitWin
			c.clientInitWin = int64(s.Val)
			for _, st := range c.streams {
				if err := st.window.Adjust(delta); err != nil {
					return frame.ConnError{Code: frame.ErrCodeFlowControl, Reason: err.Error()}
				}
				st.zeroDataSent = false
				if delta > 0 {
					st.stalled = false
				}
			}
		case frame.SettingMaxFrameSize:
			c.maxSendFrame = s.Val
		case frame.SettingHeaderTableSize:
			c.enc.SetMaxDynamicTableSize(s.Val)
		case frame.SettingMaxConcurrentStreams:
			c.clientMaxConc = s.Val
		case frame.SettingEnablePush:
			c.pushEnabled = s.Val == 1
		}
	}
	return c.fr.WriteSettingsAck()
}

func (c *conn) handleHeaders(f *frame.HeadersFrame) error {
	id := f.Header().StreamID
	if id%2 == 0 {
		return frame.ConnError{Code: frame.ErrCodeProtocol, Reason: "client used even stream ID"}
	}
	p := c.srv.profile
	if f.HasPriority() && f.Priority.StreamDep == id {
		return c.reactSelfDependency(id)
	}
	if id > c.maxSeenClient.Load() {
		c.maxSeenClient.Store(id)
	}
	if _, exists := c.streams[id]; !exists {
		if p.AdvertiseMaxStreams && uint32(c.clientOpen) >= p.MaxConcurrentStreams {
			return c.fr.WriteRSTStream(id, frame.ErrCodeRefusedStream)
		}
		// Detector stream-cap mitigation: a flagged connection gets a much
		// smaller concurrency budget than the profile advertises.
		if capN := c.streamCap.Load(); capN > 0 && int64(c.clientOpen) >= capN {
			return c.fr.WriteRSTStream(id, frame.ErrCodeRefusedStream)
		}
	}
	st := c.openStream(id, false)
	if f.HasPriority() {
		if err := c.tree.Update(id, priority.Param{
			StreamDep: f.Priority.StreamDep,
			Exclusive: f.Priority.Exclusive,
			Weight:    f.Priority.Weight,
		}); err != nil {
			return c.reactSelfDependency(id)
		}
	}
	st.headerFragment = append(st.headerFragment, f.Fragment...)
	if err := c.checkHeaderBlockBound(st); err != nil {
		return err
	}
	st.headerEnd = f.StreamEnded()
	if !f.HeadersEnded() {
		c.contStream = id
		return nil
	}
	return c.finishHeaderBlock(st)
}

func (c *conn) handleContinuation(f *frame.ContinuationFrame) error {
	st, ok := c.streams[f.Header().StreamID]
	if !ok {
		return frame.ConnError{Code: frame.ErrCodeProtocol, Reason: "CONTINUATION for unknown stream"}
	}
	st.headerFragment = append(st.headerFragment, f.Fragment...)
	if err := c.checkHeaderBlockBound(st); err != nil {
		return err
	}
	if !f.HeadersEnded() {
		return nil
	}
	c.contStream = 0
	return c.finishHeaderBlock(st)
}

// checkHeaderBlockBound tears the connection down when one header block's
// accumulated HEADERS+CONTINUATION fragments exceed maxHeaderBlockBytes —
// the CONTINUATION-flood bound.
func (c *conn) checkHeaderBlockBound(st *stream) error {
	if len(st.headerFragment) > maxHeaderBlockBytes {
		return frame.ConnError{
			Code:   frame.ErrCodeEnhanceYourCalm,
			Reason: fmt.Sprintf("header block exceeds %d bytes", maxHeaderBlockBytes),
		}
	}
	return nil
}

func (c *conn) finishHeaderBlock(st *stream) error {
	fields, err := c.dec.DecodeAppend(c.decFields[:0], st.headerFragment)
	c.decFields = fields
	st.headerFragment = st.headerFragment[:0]
	if err != nil {
		return frame.ConnError{Code: frame.ErrCodeCompression, Reason: err.Error()}
	}
	// Copy the field list into stream-owned backing: the decode scratch is
	// clobbered by the next header block on this connection, and a request
	// may respond later (POST bodies, deferred dispatch).
	st.reqHeaders = append(st.reqHeaders[:0], fields...)
	st.headerDone = true
	if st.headerEnd {
		st.reqDone = true
	}
	if err := c.fpOnHeaders(fields); err != nil {
		return err
	}
	if st.reqDone || requestMethod(fields) == "GET" {
		c.respond(st)
	}
	if boost := c.srv.profile.StreamWindowBoost; boost > 0 {
		if err := c.fr.WriteWindowUpdate(st.id, boost); err != nil {
			return err
		}
	}
	return nil
}

func requestMethod(fields []hpack.HeaderField) string {
	for _, f := range fields {
		if f.Name == ":method" {
			return f.Value
		}
	}
	return ""
}

func requestPath(fields []hpack.HeaderField) string {
	for _, f := range fields {
		if f.Name == ":path" {
			return f.Value
		}
	}
	return "/"
}

// openStream returns the stream for id, creating (or recycling from the
// conn's pool) it if new. New streams join the tail of the arrival order.
func (c *conn) openStream(id uint32, pushed bool) *stream {
	if st, ok := c.streams[id]; ok {
		return st
	}
	st := c.streamPool
	if st != nil {
		c.streamPool = st.poolNext
		st.reset(id, pushed)
	} else {
		st = &stream{id: id, pushed: pushed}
	}
	// New streams start at the client's advertised initial window size.
	st.window.Reset(c.clientInitWin)
	if m := c.srv.Metrics; m != nil {
		m.streamsOpened.Inc()
		m.activeStreams.Add(1)
		st.openedAt = time.Now()
	}
	c.streams[id] = st
	c.order = append(c.order, st)
	if !c.tree.Contains(id) {
		_ = c.tree.Add(id, priority.Param{Weight: priority.DefaultWeight})
	}
	if pushed {
		c.pushOpen++
	} else {
		c.clientOpen++
	}
	return st
}

func (c *conn) closeStream(id uint32) {
	st, ok := c.streams[id]
	if !ok {
		return
	}
	delete(c.streams, id)
	for i, o := range c.order {
		if o == st {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = nil
			c.order = c.order[:len(c.order)-1]
			break
		}
	}
	c.noteDequeued(st)
	if m := c.srv.Metrics; m != nil {
		m.activeStreams.Add(-1)
		m.streamDuration.Observe(int64(time.Since(st.openedAt)))
	}
	c.tree.Remove(id)
	c.sched.Forget(id)
	if st.pushed {
		c.pushOpen--
	} else {
		c.clientOpen--
	}
	// Recycle: drop aliases into the route table and response bodies, keep
	// the grown request-header backing for the next stream.
	st.respHeaders = nil
	st.body = nil
	st.poolNext = c.streamPool
	c.streamPool = st
}

// respond generates the response for a request stream and queues any pushes.
// The compiled route table serves the steady state; /fp and resources added
// after New fall back to the dynamic path.
func (c *conn) respond(st *stream) {
	if st.responded {
		return
	}
	st.responded = true
	path := requestPath(st.reqHeaders)
	if c.dispatchRequest(st, path) {
		return
	}
	if path == fingerprintPath {
		c.respondFingerprint(st)
		return
	}
	if res, ok := c.srv.site.Lookup(path); ok {
		// Resource added to the site after route compilation: build the
		// response headers dynamically.
		st.respHeaders = c.responseHeaders("200", res.ContentType, len(res.Body), res.ExtraHeaders)
		st.body = res.Body
		st.eager = true
		c.noteQueued(st)
		return
	}
	e := &c.srv.routes.notFound
	st.respHeaders = e.fields
	st.body = e.res.Body
	st.eager = true
	c.noteQueued(st)
}

// dispatchRequest resolves path through the compiled route table and queues
// the prebuilt response, reporting false on a table miss. This is the
// zero-alloc HEADERS→response dispatch: a binary search, slice aliasing,
// and gauge arithmetic — no maps, no string churn.
//
//h2:hotpath — the per-request dispatch entry point.
func (c *conn) dispatchRequest(st *stream, path string) bool {
	e := c.srv.routes.lookup(path)
	if e == nil {
		return false
	}
	st.respHeaders = e.fields
	st.body = e.res.Body
	st.eager = true
	c.noteQueued(st)
	if len(e.pushes) > 0 && c.srv.profile.EnablePush && c.pushEnabled && !st.pushed {
		c.queuePushes(st, e)
	}
	return true
}

// queuePushes emits PUSH_PROMISE frames for the route's resolved push
// manifest and queues the pushed responses.
func (c *conn) queuePushes(parent *stream, e *routeEntry) {
	rt := c.srv.routes
	for i := range e.pushes {
		pr := &e.pushes[i]
		if uint32(c.pushOpen) >= c.clientMaxConc {
			return
		}
		promiseID := c.nextPushID
		c.nextPushID += 2
		c.encBuf = c.enc.AppendBlock(c.encBuf[:0], pr.reqFields)
		if err := c.fr.WritePushPromise(parent.id, promiseID, true, c.encBuf); err != nil {
			return
		}
		ps := c.openStream(promiseID, true)
		// Pushed streams depend on the associated request stream
		// (RFC 7540 section 5.3.5 default prioritization).
		_ = c.tree.Update(promiseID, priority.Param{StreamDep: parent.id, Weight: priority.DefaultWeight})
		target := &rt.entries[pr.target]
		ps.respHeaders = target.fields
		ps.body = target.res.Body
		ps.responded = true
		ps.eager = true
		c.noteQueued(ps)
	}
}

// responseHeaders builds a realistic response header list. Values are
// deterministic so repeated identical requests produce byte-identical
// header blocks — the precondition of the paper's HPACK ratio experiment.
func (c *conn) responseHeaders(status, contentType string, bodyLen int, extra []hpack.HeaderField) []hpack.HeaderField {
	fields := []hpack.HeaderField{
		{Name: ":status", Value: status},
		{Name: "server", Value: c.srv.profile.Name},
		{Name: "date", Value: fixedDate},
		{Name: "content-type", Value: contentType},
		{Name: "content-length", Value: strconv.Itoa(bodyLen)},
		{Name: "last-modified", Value: fixedDate},
		{Name: "etag", Value: fmt.Sprintf("%q", strconv.FormatInt(int64(bodyLen)*2654435761, 36))},
		{Name: "accept-ranges", Value: "bytes"},
		{Name: "vary", Value: "accept-encoding"},
	}
	return append(fields, extra...)
}

func (c *conn) handleData(f *frame.DataFrame) error {
	n := int64(f.FlowControlLen())
	if err := c.recvWindow.Consume(n); err != nil {
		return frame.ConnError{Code: frame.ErrCodeFlowControl, Reason: "connection flow-control window exceeded"}
	}
	st, ok := c.streams[f.Header().StreamID]
	if !ok {
		return nil
	}
	if f.StreamEnded() {
		st.reqDone = true
		if !st.responded && st.headerDone {
			c.respond(st)
		}
	}
	return nil
}

func (c *conn) reactSelfDependency(id uint32) error {
	switch c.srv.profile.SelfDependency {
	case ReactRSTStream:
		return c.fr.WriteRSTStream(id, frame.ErrCodeProtocol)
	case ReactGoAway:
		return c.goAway(frame.ErrCodeProtocol, "stream cannot depend on itself")
	default:
		return nil
	}
}

func (c *conn) handlePriority(f *frame.PriorityFrame) error {
	c.fpOnPriority(f)
	id := f.Header().StreamID
	if f.Priority.StreamDep == id {
		return c.reactSelfDependency(id)
	}
	return c.tree.Update(id, priority.Param{
		StreamDep: f.Priority.StreamDep,
		Exclusive: f.Priority.Exclusive,
		Weight:    f.Priority.Weight,
	})
}

func (c *conn) handleWindowUpdate(f *frame.WindowUpdateFrame) error {
	id := f.Header().StreamID
	c.fpOnWindowUpdate(id, f.Increment)
	p := c.srv.profile
	if f.Increment == 0 {
		if id == 0 {
			switch p.ZeroWindowUpdateConn {
			case ReactGoAway:
				debug := ""
				if p.ZeroWindowDebugData {
					debug = "window update shouldn't be zero"
				}
				return c.goAway(frame.ErrCodeProtocol, debug)
			default:
				return nil
			}
		}
		switch p.ZeroWindowUpdateStream {
		case ReactRSTStream:
			return c.fr.WriteRSTStream(id, frame.ErrCodeProtocol)
		case ReactGoAway:
			return c.goAway(frame.ErrCodeProtocol, "")
		default:
			return nil
		}
	}

	if id == 0 {
		if err := c.sendWindow.Increase(f.Increment); err != nil {
			if errors.Is(err, flowcontrol.ErrWindowOverflow) {
				switch p.LargeWindowUpdateConn {
				case ReactGoAway:
					return c.goAway(frame.ErrCodeFlowControl, "")
				default:
					return nil
				}
			}
			return err
		}
		c.resetZeroDataFlags()
		c.connStalled = false
		return nil
	}
	st, ok := c.streams[id]
	if !ok {
		return nil // closed or idle stream: tolerate (RFC section 5.1)
	}
	if err := st.window.Increase(f.Increment); err != nil {
		if errors.Is(err, flowcontrol.ErrWindowOverflow) {
			switch p.LargeWindowUpdateStream {
			case ReactRSTStream:
				return c.fr.WriteRSTStream(id, frame.ErrCodeFlowControl)
			case ReactGoAway:
				return c.goAway(frame.ErrCodeFlowControl, "")
			default:
				return nil
			}
		}
		return err
	}
	st.zeroDataSent = false
	st.stalled = false
	return nil
}

func (c *conn) resetZeroDataFlags() {
	for _, st := range c.streams {
		st.zeroDataSent = false
	}
}

func (c *conn) handlePing(f *frame.PingFrame) error {
	if f.IsAck() || !c.srv.profile.AnswerPing {
		return nil
	}
	// RFC 7540 section 6.7: PING responses get higher priority than any
	// other frame, so the ACK is written immediately, ahead of queued DATA.
	return c.fr.WritePing(true, f.Data)
}
