package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"h2scope/internal/fingerprint"
	"h2scope/internal/flowcontrol"
	"h2scope/internal/frame"
	"h2scope/internal/hpack"
	"h2scope/internal/priority"
	"h2scope/internal/trace"
)

// fixedDate keeps response header bytes deterministic across runs; the
// HPACK-ratio experiment depends on responses being byte-identical.
const fixedDate = "Tue, 05 Jul 2016 10:00:00 GMT"

// tinyWindowThreshold is the stream-window size below which the
// TinyWindowZeroData and TinyWindowSilent behaviors trigger.
const tinyWindowThreshold = 64

// maxHeaderBlockBytes bounds the accumulated HEADERS+CONTINUATION fragment
// for one header block. Without it a peer can stream CONTINUATION frames
// forever, growing the buffer unboundedly while the connection makes no
// progress (the CONTINUATION-flood attack); past the bound the connection is
// torn down with ENHANCE_YOUR_CALM.
const maxHeaderBlockBytes = 256 << 10

// defaultMaxHeaderListBytes caps the *decoded* size of one header block
// when the profile does not advertise SETTINGS_MAX_HEADER_LIST_SIZE. A
// few-KiB HPACK bomb expands thousandsfold through dynamic-table
// references, so the cap is enforced by the decoder during expansion and
// surfaces as a COMPRESSION_ERROR connection error.
const defaultMaxHeaderListBytes = 256 << 10

// Server is an HTTP/2 origin server for one Site, with behavior selected by
// a Profile.
type Server struct {
	profile Profile
	site    *Site

	// Logf, when non-nil, receives debug lines.
	Logf func(format string, args ...any)

	// Trace, when non-nil, receives frame-level trace events for every
	// connection the server handles (a fresh trace connection ID per
	// accepted conn). Set it before serving; like Logf it is not guarded
	// by a lock.
	Trace *trace.Tracer

	// Metrics, when non-nil, receives instrument bumps from every
	// connection the server handles (see NewMetrics for the catalog). Set
	// it before serving; like Trace it is not guarded by a lock.
	Metrics *Metrics

	// DisableFingerprint turns off the passive client-fingerprinting
	// plane: no behavioral assembly, no metrics, and an empty /fp echo.
	DisableFingerprint bool

	// HelloSource, when non-nil, resolves the TLS ClientHello for a served
	// conn that does not itself implement tlsutil.HelloConn — the
	// tlsutil.HelloCapture fallback path. Set it before serving.
	HelloSource func(net.Conn) *fingerprint.ClientHello

	mu     sync.Mutex
	lis    []net.Listener
	conns  map[*conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// det is the attack detector, when StartDetector attached one.
	det *Detector
}

// New returns a server for site with the given behavior profile.
func New(p Profile, site *Site) *Server {
	return &Server{
		profile: p,
		site:    site,
		conns:   make(map[*conn]struct{}),
	}
}

// Profile returns the server's behavior profile.
func (s *Server) Profile() Profile { return s.profile }

// Site returns the server's document tree.
func (s *Server) Site() *Site { return s.site }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections from l until the listener fails or Close is
// called. Each connection is served on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: closed")
	}
	s.lis = append(s.lis, l)
	s.mu.Unlock()

	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		// Registering under mu while !closed guarantees no wg.Add can race
		// a Close/Shutdown wg.Wait: Wait only starts after closed is set,
		// and a conn accepted around that moment is rejected here instead.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = nc.Close()
			return nil
		}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			if err := s.ServeConn(nc); err != nil && !errors.Is(err, io.EOF) {
				s.logf("conn %v: %v", nc.RemoteAddr(), err)
			}
		}()
	}
}

// Close stops all listeners and waits for in-flight connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.lis = nil
	s.mu.Unlock()
	for _, l := range lis {
		_ = l.Close()
	}
	s.wg.Wait()
	s.detector().Stop()
}

// detector returns the attached attack detector, or nil.
func (s *Server) detector() *Detector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.det
}

// Shutdown closes gracefully (RFC 7540 section 6.8): listeners stop
// accepting, every live connection receives GOAWAY(NO_ERROR), and
// connections that have not wound down after the grace period are closed
// forcibly. Shutdown blocks until all connections ended.
func (s *Server) Shutdown(grace time.Duration) {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	s.lis = nil
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range lis {
		_ = l.Close()
	}
	for _, c := range conns {
		// The framer serializes writes, so announcing shutdown from here
		// is safe alongside the connection's own goroutine. The explicit
		// Flush pushes the GOAWAY past the coalescing buffer while the
		// serve loop may be blocked in ReadFrame.
		if c.fr.WriteGoAway(c.maxClientStream(), frame.ErrCodeNo, []byte("server shutting down")) == nil {
			_ = c.fr.Flush()
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		for _, c := range conns {
			_ = c.nc.Close()
		}
		<-done
	}
}

// track registers c for Shutdown's GOAWAY/force-close sweep. It reports
// false when the server already closed, so a connection accepted just
// before Close/Shutdown cannot slip past the sweep and linger unclosed.
func (s *Server) track(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c *conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// ServeConn serves one already-established connection (TCP, TLS, or an
// in-process pipe) and blocks until it ends.
func (s *Server) ServeConn(nc net.Conn) error {
	defer func() {
		_ = nc.Close()
	}()
	c := &conn{
		srv:           s,
		nc:            nc,
		fr:            newServerFramer(nc),
		enc:           newResponseEncoder(&s.profile),
		dec:           hpack.NewDecoder(hpack.DefaultDynamicTableSize),
		streams:       make(map[uint32]*stream),
		sendWindow:    flowcontrol.New(flowcontrol.DefaultWindow),
		recvWindow:    flowcontrol.New(flowcontrol.DefaultWindow),
		clientInitWin: frame.DefaultInitialWindowSize,
		maxSendFrame:  frame.DefaultMaxFrameSize,
		clientMaxConc: ^uint32(0),
		pushEnabled:   true,
		tree:          priority.NewTree(),
		nextPushID:    2,
		eagerPending:  make(map[uint32]bool),
		firstSent:     make(map[uint32]bool),
	}
	c.sched = priority.NewScheduler(c.tree)
	c.fpInit(nc)
	// Bound decoded header blocks (the HPACK-bomb guard): the advertised
	// SETTINGS_MAX_HEADER_LIST_SIZE when the profile has one, a defensive
	// default otherwise.
	if limit := s.profile.MaxHeaderListSize; limit > 0 {
		c.dec.SetMaxHeaderListSize(limit)
	} else {
		c.dec.SetMaxHeaderListSize(defaultMaxHeaderListBytes)
	}
	if s.Metrics != nil {
		// Install the framer hook before serve() starts reading; the framer
		// is single-threaded at this point.
		c.fr.SetMetrics(s.Metrics.framer)
		s.Metrics.connsAccepted.Inc()
		s.Metrics.activeConns.Add(1)
		defer c.settleOnClose()
	}
	if s.Trace != nil {
		id := s.Trace.ConnID()
		// The hook must be in place before serve() starts reading; the
		// framer is single-threaded at this point.
		c.fr.SetTrace(func(sent bool, hdr frame.Header) {
			s.Trace.Frame(id, sent, hdr)
		})
		c.traceErr = func(detail string) { s.Trace.Error(id, detail) }
		s.Trace.ConnOpen(id, nc.RemoteAddr().String())
		defer func() { s.Trace.ConnClose(id, "") }()
		if d := s.detector(); d != nil {
			// Register for mitigation under the same trace conn ID the
			// detector sees in the event stream.
			d.register(id, c)
			defer d.unregister(id)
		}
	}
	if !s.track(c) {
		return errors.New("server: closed")
	}
	defer s.untrack(c)
	return c.serve()
}

// stream is one server-side stream with a pending or in-flight response.
type stream struct {
	id      uint32
	arrival int
	// pushed marks server-initiated (even-ID) streams.
	pushed bool
	// window is the server's send window for this stream.
	window *flowcontrol.Window
	// reqHeaders is the decoded request header list.
	reqHeaders []hpack.HeaderField
	// reqDone is set once the client half-closed (END_STREAM seen).
	reqDone bool
	// respHeaders is the encoded-on-demand response header list; nil until
	// the response is generated.
	respHeaders []hpack.HeaderField
	// body is the unsent remainder of the response payload.
	body []byte
	// headersWritten is set once the response HEADERS frame went out.
	headersWritten bool
	// responded is set once a response has been generated for the request.
	responded bool
	// zeroDataSent throttles the TinyWindowZeroData behavior to one empty
	// frame per window state.
	zeroDataSent bool
	// stalled marks a counted stream-window stall; re-armed when the window
	// grows, so each blocked period counts once.
	stalled bool
	// openedAt feeds the stream-duration histogram; zero without Metrics.
	openedAt time.Time
	// headerFragment accumulates CONTINUATION payloads for this stream.
	headerFragment []byte
	headerDone     bool
	headerEnd      bool
}

type conn struct {
	srv *Server
	nc  net.Conn
	fr  *frame.Framer
	enc *hpack.Encoder
	dec *hpack.Decoder
	// encBuf is the HPACK encode scratch buffer, reused across response
	// header blocks; only the serve goroutine touches it (Shutdown's
	// cross-goroutine GOAWAY never encodes headers).
	encBuf []byte

	streams  map[uint32]*stream
	arrival  int
	rrCursor int

	sendWindow *flowcontrol.Window
	recvWindow *flowcontrol.Window

	// clientInitWin tracks the client's SETTINGS_INITIAL_WINDOW_SIZE, the
	// initial send window for new streams.
	clientInitWin int64
	maxSendFrame  uint32
	clientMaxConc uint32
	pushEnabled   bool

	tree  *priority.Tree
	sched *priority.Scheduler

	nextPushID uint32
	pushOpen   int
	clientOpen int
	goingAway  bool
	// connStalled marks a counted connection-window stall; re-armed by the
	// WINDOW_UPDATE that unblocks it.
	connStalled bool
	// eagerPending and firstSent support the partially-compliant
	// scheduling modes.
	eagerPending map[uint32]bool
	firstSent    map[uint32]bool
	// contStream, when nonzero, is the stream whose header block is being
	// continued.
	contStream uint32

	// traceErr, when non-nil, records a connection error on the trace bus
	// (the detector corroborates HPACK-bomb scoring with it).
	traceErr func(detail string)

	// Detector mitigation state, written by the detector goroutine and read
	// by the serve goroutine, hence atomic. readDelay (ns) throttles the
	// read loop between frames; streamCap, when nonzero, overrides the
	// profile's concurrent-stream limit downward; maxSeenClient mirrors the
	// highest client stream ID for cross-goroutine GOAWAY (maxClientStream
	// walks c.streams, which only the serve goroutine may touch); killed
	// makes the GOAWAY+close mitigation idempotent.
	readDelay     atomic.Int64
	streamCap     atomic.Int64
	maxSeenClient atomic.Uint32
	killed        atomic.Bool

	// Fingerprint plane (see fingerprint.go). fpa and helloFn are touched
	// only by the serve goroutine; fpAkamai publishes the sealed akamai
	// string for the detector goroutine to label detections with.
	fpa      *fingerprint.H2Assembler
	helloFn  func() *fingerprint.ClientHello
	fpAkamai atomic.Pointer[string]
}

// mitigateRateLimit throttles the connection's read loop: the serve
// goroutine sleeps d between frames. Safe from any goroutine.
func (c *conn) mitigateRateLimit(d time.Duration) { c.readDelay.Store(int64(d)) }

// mitigateStreamCap refuses new streams beyond n (RST_STREAM with
// REFUSED_STREAM), regardless of the profile's advertised limit. Safe from
// any goroutine.
func (c *conn) mitigateStreamCap(n int64) { c.streamCap.Store(n) }

// mitigateGoAway sends GOAWAY(ENHANCE_YOUR_CALM) and closes the socket.
// The framer serializes writes (see Shutdown), so emitting from the
// detector goroutine is safe alongside the serve loop; closing the socket
// then unblocks a serve loop parked in ReadFrame.
func (c *conn) mitigateGoAway() {
	if c.killed.Swap(true) {
		return
	}
	if c.fr.WriteGoAway(c.maxSeenClient.Load(), frame.ErrCodeEnhanceYourCalm, []byte("attack mitigated")) == nil {
		_ = c.fr.Flush()
	}
	_ = c.nc.Close()
}

// newResponseEncoder builds the HPACK encoder the profile calls for.
// newServerFramer builds the per-connection framer with write coalescing
// enabled: the serve loop flushes once per handled frame, so a burst of
// response frames (HEADERS+DATA fan-out across streams) reaches the wire in
// a single write instead of one write per frame.
func newServerFramer(nc net.Conn) *frame.Framer {
	fr := frame.NewFramer(nc, nc)
	fr.SetWriteBuffering(0)
	return fr
}

func newResponseEncoder(p *Profile) *hpack.Encoder {
	if p.HPACKPolicy == hpack.PolicyIndexPartial {
		return hpack.NewPartialEncoder(p.HPACKPartialFraction, p.HPACKPartialSalt)
	}
	return hpack.NewEncoder(p.HPACKPolicy)
}

func (c *conn) serve() error {
	if err := c.readPreface(); err != nil {
		return err
	}
	if err := c.fr.WriteSettings(c.srv.profile.settings()...); err != nil {
		return err
	}
	if boost := c.srv.profile.ConnWindowBoost; boost > 0 {
		if err := c.fr.WriteWindowUpdate(0, boost); err != nil {
			return err
		}
		// Track our own receive window so incoming DATA accounting stays
		// consistent with what we advertised.
		_ = c.recvWindow.Increase(boost)
	}
	// SETTINGS and the optional window boost coalesce into one write.
	if err := c.fr.Flush(); err != nil {
		return err
	}
	for {
		// Detector rate-limit mitigation: pace the read loop.
		if d := c.readDelay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		f, err := c.fr.ReadFrame()
		if err != nil {
			var ce frame.ConnError
			if errors.As(err, &ce) {
				_ = c.goAway(ce.Code, ce.Reason)
				return nil
			}
			var se frame.StreamError
			if errors.As(err, &se) {
				if c.fr.WriteRSTStream(se.StreamID, se.Code) == nil {
					_ = c.fr.Flush()
				}
				continue
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if err := c.handleFrame(f); err != nil {
			var ce frame.ConnError
			if errors.As(err, &ce) {
				_ = c.goAway(ce.Code, ce.Reason)
				return nil
			}
			return err
		}
		if c.goingAway {
			return c.fr.Flush()
		}
		if err := c.flush(); err != nil {
			return err
		}
		// One wire write per handled frame: everything the handlers and the
		// response scheduler queued this iteration goes out together.
		if err := c.fr.Flush(); err != nil {
			return err
		}
	}
}

func (c *conn) readPreface() error {
	buf := make([]byte, len(frame.ClientPreface))
	if _, err := io.ReadFull(c.nc, buf); err != nil {
		return fmt.Errorf("server: reading preface: %w", err)
	}
	if string(buf) != frame.ClientPreface {
		return errors.New("server: bad client preface")
	}
	return nil
}

// goAway emits GOAWAY and marks the connection for teardown. It flushes,
// since every caller tears the connection down right after.
func (c *conn) goAway(code frame.ErrCode, debug string) error {
	c.goingAway = true
	if c.traceErr != nil && code != frame.ErrCodeNo {
		c.traceErr(debug)
	}
	var debugData []byte
	if debug != "" {
		debugData = []byte(debug)
	}
	if err := c.fr.WriteGoAway(c.maxClientStream(), code, debugData); err != nil {
		return err
	}
	return c.fr.Flush()
}

func (c *conn) maxClientStream() uint32 {
	var maxID uint32
	for id := range c.streams {
		if id%2 == 1 && id > maxID {
			maxID = id
		}
	}
	return maxID
}

func (c *conn) handleFrame(f frame.Frame) error {
	if c.contStream != 0 {
		cf, ok := f.(*frame.ContinuationFrame)
		if !ok || cf.Header().StreamID != c.contStream {
			return frame.ConnError{Code: frame.ErrCodeProtocol, Reason: "expected CONTINUATION"}
		}
	}
	switch f := f.(type) {
	case *frame.SettingsFrame:
		return c.handleSettings(f)
	case *frame.HeadersFrame:
		return c.handleHeaders(f)
	case *frame.ContinuationFrame:
		return c.handleContinuation(f)
	case *frame.DataFrame:
		return c.handleData(f)
	case *frame.PriorityFrame:
		return c.handlePriority(f)
	case *frame.WindowUpdateFrame:
		return c.handleWindowUpdate(f)
	case *frame.PingFrame:
		return c.handlePing(f)
	case *frame.RSTStreamFrame:
		c.closeStream(f.Header().StreamID)
		return nil
	case *frame.GoAwayFrame:
		c.goingAway = true
		return nil
	case *frame.PushPromiseFrame:
		return frame.ConnError{Code: frame.ErrCodeProtocol, Reason: "client sent PUSH_PROMISE"}
	default:
		// Unknown frame types must be ignored (RFC 7540 section 4.1).
		return nil
	}
}

func (c *conn) handleSettings(f *frame.SettingsFrame) error {
	if f.IsAck() {
		return nil
	}
	c.fpOnSettings(f.Settings)
	for _, s := range f.Settings {
		if err := s.Valid(); err != nil {
			return err
		}
		switch s.ID {
		case frame.SettingInitialWindowSize:
			delta := int64(s.Val) - c.clientInitWin
			c.clientInitWin = int64(s.Val)
			for _, st := range c.streams {
				if err := st.window.Adjust(delta); err != nil {
					return frame.ConnError{Code: frame.ErrCodeFlowControl, Reason: err.Error()}
				}
				st.zeroDataSent = false
				if delta > 0 {
					st.stalled = false
				}
			}
		case frame.SettingMaxFrameSize:
			c.maxSendFrame = s.Val
		case frame.SettingHeaderTableSize:
			c.enc.SetMaxDynamicTableSize(s.Val)
		case frame.SettingMaxConcurrentStreams:
			c.clientMaxConc = s.Val
		case frame.SettingEnablePush:
			c.pushEnabled = s.Val == 1
		}
	}
	return c.fr.WriteSettingsAck()
}

func (c *conn) handleHeaders(f *frame.HeadersFrame) error {
	id := f.Header().StreamID
	if id%2 == 0 {
		return frame.ConnError{Code: frame.ErrCodeProtocol, Reason: "client used even stream ID"}
	}
	p := c.srv.profile
	if f.HasPriority() && f.Priority.StreamDep == id {
		return c.reactSelfDependency(id)
	}
	if id > c.maxSeenClient.Load() {
		c.maxSeenClient.Store(id)
	}
	if _, exists := c.streams[id]; !exists {
		if p.AdvertiseMaxStreams && uint32(c.clientOpen) >= p.MaxConcurrentStreams {
			return c.fr.WriteRSTStream(id, frame.ErrCodeRefusedStream)
		}
		// Detector stream-cap mitigation: a flagged connection gets a much
		// smaller concurrency budget than the profile advertises.
		if capN := c.streamCap.Load(); capN > 0 && int64(c.clientOpen) >= capN {
			return c.fr.WriteRSTStream(id, frame.ErrCodeRefusedStream)
		}
	}
	st := c.openStream(id, false)
	if f.HasPriority() {
		if err := c.tree.Update(id, priority.Param{
			StreamDep: f.Priority.StreamDep,
			Exclusive: f.Priority.Exclusive,
			Weight:    f.Priority.Weight,
		}); err != nil {
			return c.reactSelfDependency(id)
		}
	}
	st.headerFragment = append(st.headerFragment, f.Fragment...)
	if err := c.checkHeaderBlockBound(st); err != nil {
		return err
	}
	st.headerEnd = f.StreamEnded()
	if !f.HeadersEnded() {
		c.contStream = id
		return nil
	}
	return c.finishHeaderBlock(st)
}

func (c *conn) handleContinuation(f *frame.ContinuationFrame) error {
	st, ok := c.streams[f.Header().StreamID]
	if !ok {
		return frame.ConnError{Code: frame.ErrCodeProtocol, Reason: "CONTINUATION for unknown stream"}
	}
	st.headerFragment = append(st.headerFragment, f.Fragment...)
	if err := c.checkHeaderBlockBound(st); err != nil {
		return err
	}
	if !f.HeadersEnded() {
		return nil
	}
	c.contStream = 0
	return c.finishHeaderBlock(st)
}

// checkHeaderBlockBound tears the connection down when one header block's
// accumulated HEADERS+CONTINUATION fragments exceed maxHeaderBlockBytes —
// the CONTINUATION-flood bound.
func (c *conn) checkHeaderBlockBound(st *stream) error {
	if len(st.headerFragment) <= maxHeaderBlockBytes {
		return nil
	}
	return frame.ConnError{
		Code:   frame.ErrCodeEnhanceYourCalm,
		Reason: fmt.Sprintf("header block exceeds %d bytes", maxHeaderBlockBytes),
	}
}

func (c *conn) finishHeaderBlock(st *stream) error {
	fields, err := c.dec.DecodeFull(st.headerFragment)
	st.headerFragment = nil
	if err != nil {
		return frame.ConnError{Code: frame.ErrCodeCompression, Reason: err.Error()}
	}
	st.reqHeaders = fields
	st.headerDone = true
	if st.headerEnd {
		st.reqDone = true
	}
	if err := c.fpOnHeaders(fields); err != nil {
		return err
	}
	if st.reqDone || requestMethod(fields) == "GET" {
		c.respond(st)
	}
	if boost := c.srv.profile.StreamWindowBoost; boost > 0 {
		if err := c.fr.WriteWindowUpdate(st.id, boost); err != nil {
			return err
		}
	}
	return nil
}

func requestMethod(fields []hpack.HeaderField) string {
	for _, f := range fields {
		if f.Name == ":method" {
			return f.Value
		}
	}
	return ""
}

func requestPath(fields []hpack.HeaderField) string {
	for _, f := range fields {
		if f.Name == ":path" {
			return f.Value
		}
	}
	return "/"
}

func (c *conn) openStream(id uint32, pushed bool) *stream {
	if st, ok := c.streams[id]; ok {
		return st
	}
	c.arrival++
	st := &stream{
		id:      id,
		arrival: c.arrival,
		pushed:  pushed,
		window:  flowcontrol.New(0),
	}
	// New streams start at the client's advertised initial window size.
	_ = st.window.Adjust(c.clientInitWin)
	if m := c.srv.Metrics; m != nil {
		m.streamsOpened.Inc()
		m.activeStreams.Add(1)
		st.openedAt = time.Now()
	}
	c.streams[id] = st
	if !c.tree.Contains(id) {
		_ = c.tree.Add(id, priority.Param{Weight: priority.DefaultWeight})
	}
	if pushed {
		c.pushOpen++
	} else {
		c.clientOpen++
	}
	return st
}

func (c *conn) closeStream(id uint32) {
	st, ok := c.streams[id]
	if !ok {
		return
	}
	delete(c.streams, id)
	if m := c.srv.Metrics; m != nil {
		m.activeStreams.Add(-1)
		m.streamDuration.Observe(int64(time.Since(st.openedAt)))
	}
	c.tree.Remove(id)
	c.sched.Forget(id)
	delete(c.eagerPending, id)
	delete(c.firstSent, id)
	if st.pushed {
		c.pushOpen--
	} else {
		c.clientOpen--
	}
}

// respond generates the response for a request stream and queues any pushes.
func (c *conn) respond(st *stream) {
	if st.responded {
		return
	}
	st.responded = true
	path := requestPath(st.reqHeaders)
	if path == fingerprintPath {
		c.respondFingerprint(st)
		return
	}
	res, ok := c.srv.site.Lookup(path)
	if !ok {
		notFound := []byte("<html><body><h1>404 Not Found</h1></body></html>")
		st.respHeaders = c.responseHeaders("404", "text/html; charset=utf-8", len(notFound), nil)
		st.body = notFound
		c.eagerPending[st.id] = true
		return
	}
	st.respHeaders = c.responseHeaders("200", res.ContentType, len(res.Body), res.ExtraHeaders)
	st.body = res.Body
	c.eagerPending[st.id] = true

	if c.srv.profile.EnablePush && c.pushEnabled && !st.pushed {
		c.queuePushes(st, res)
	}
}

func (c *conn) queuePushes(parent *stream, res *Resource) {
	for _, path := range res.Push {
		pres, ok := c.srv.site.Lookup(path)
		if !ok {
			continue
		}
		if uint32(c.pushOpen) >= c.clientMaxConc {
			return
		}
		promiseID := c.nextPushID
		c.nextPushID += 2
		reqFields := []hpack.HeaderField{
			{Name: ":method", Value: "GET"},
			{Name: ":scheme", Value: "https"},
			{Name: ":authority", Value: c.srv.site.Domain},
			{Name: ":path", Value: path},
		}
		c.encBuf = c.enc.AppendBlock(c.encBuf[:0], reqFields)
		if err := c.fr.WritePushPromise(parent.id, promiseID, true, c.encBuf); err != nil {
			return
		}
		ps := c.openStream(promiseID, true)
		// Pushed streams depend on the associated request stream
		// (RFC 7540 section 5.3.5 default prioritization).
		_ = c.tree.Update(promiseID, priority.Param{StreamDep: parent.id, Weight: priority.DefaultWeight})
		ps.respHeaders = c.responseHeaders("200", pres.ContentType, len(pres.Body), pres.ExtraHeaders)
		ps.body = pres.Body
		ps.responded = true
		c.eagerPending[promiseID] = true
	}
}

// responseHeaders builds a realistic response header list. Values are
// deterministic so repeated identical requests produce byte-identical
// header blocks — the precondition of the paper's HPACK ratio experiment.
func (c *conn) responseHeaders(status, contentType string, bodyLen int, extra []hpack.HeaderField) []hpack.HeaderField {
	fields := []hpack.HeaderField{
		{Name: ":status", Value: status},
		{Name: "server", Value: c.srv.profile.Name},
		{Name: "date", Value: fixedDate},
		{Name: "content-type", Value: contentType},
		{Name: "content-length", Value: strconv.Itoa(bodyLen)},
		{Name: "last-modified", Value: fixedDate},
		{Name: "etag", Value: fmt.Sprintf("%q", strconv.FormatInt(int64(bodyLen)*2654435761, 36))},
		{Name: "accept-ranges", Value: "bytes"},
		{Name: "vary", Value: "accept-encoding"},
	}
	return append(fields, extra...)
}

func (c *conn) handleData(f *frame.DataFrame) error {
	n := int64(f.FlowControlLen())
	if err := c.recvWindow.Consume(n); err != nil {
		return frame.ConnError{Code: frame.ErrCodeFlowControl, Reason: "connection flow-control window exceeded"}
	}
	st, ok := c.streams[f.Header().StreamID]
	if !ok {
		return nil
	}
	if f.StreamEnded() {
		st.reqDone = true
		if !st.responded && st.headerDone {
			c.respond(st)
		}
	}
	return nil
}

func (c *conn) reactSelfDependency(id uint32) error {
	switch c.srv.profile.SelfDependency {
	case ReactRSTStream:
		return c.fr.WriteRSTStream(id, frame.ErrCodeProtocol)
	case ReactGoAway:
		return c.goAway(frame.ErrCodeProtocol, "stream cannot depend on itself")
	default:
		return nil
	}
}

func (c *conn) handlePriority(f *frame.PriorityFrame) error {
	c.fpOnPriority(f)
	id := f.Header().StreamID
	if f.Priority.StreamDep == id {
		return c.reactSelfDependency(id)
	}
	return c.tree.Update(id, priority.Param{
		StreamDep: f.Priority.StreamDep,
		Exclusive: f.Priority.Exclusive,
		Weight:    f.Priority.Weight,
	})
}

func (c *conn) handleWindowUpdate(f *frame.WindowUpdateFrame) error {
	id := f.Header().StreamID
	c.fpOnWindowUpdate(id, f.Increment)
	p := c.srv.profile
	if f.Increment == 0 {
		if id == 0 {
			switch p.ZeroWindowUpdateConn {
			case ReactGoAway:
				debug := ""
				if p.ZeroWindowDebugData {
					debug = "window update shouldn't be zero"
				}
				return c.goAway(frame.ErrCodeProtocol, debug)
			default:
				return nil
			}
		}
		switch p.ZeroWindowUpdateStream {
		case ReactRSTStream:
			return c.fr.WriteRSTStream(id, frame.ErrCodeProtocol)
		case ReactGoAway:
			return c.goAway(frame.ErrCodeProtocol, "")
		default:
			return nil
		}
	}

	if id == 0 {
		if err := c.sendWindow.Increase(f.Increment); err != nil {
			if errors.Is(err, flowcontrol.ErrWindowOverflow) {
				switch p.LargeWindowUpdateConn {
				case ReactGoAway:
					return c.goAway(frame.ErrCodeFlowControl, "")
				default:
					return nil
				}
			}
			return err
		}
		c.resetZeroDataFlags()
		c.connStalled = false
		return nil
	}
	st, ok := c.streams[id]
	if !ok {
		return nil // closed or idle stream: tolerate (RFC section 5.1)
	}
	if err := st.window.Increase(f.Increment); err != nil {
		if errors.Is(err, flowcontrol.ErrWindowOverflow) {
			switch p.LargeWindowUpdateStream {
			case ReactRSTStream:
				return c.fr.WriteRSTStream(id, frame.ErrCodeFlowControl)
			case ReactGoAway:
				return c.goAway(frame.ErrCodeFlowControl, "")
			default:
				return nil
			}
		}
		return err
	}
	st.zeroDataSent = false
	st.stalled = false
	return nil
}

func (c *conn) resetZeroDataFlags() {
	for _, st := range c.streams {
		st.zeroDataSent = false
	}
}

func (c *conn) handlePing(f *frame.PingFrame) error {
	if f.IsAck() || !c.srv.profile.AnswerPing {
		return nil
	}
	// RFC 7540 section 6.7: PING responses get higher priority than any
	// other frame, so the ACK is written immediately, ahead of queued DATA.
	return c.fr.WritePing(true, f.Data)
}

// --- response transmission ---

// flush sends as many response bytes as windows and scheduling allow.
func (c *conn) flush() error {
	if err := c.flushHeaders(); err != nil {
		return err
	}
	return c.flushData()
}

// canSendHeaders applies the profile's (mis)behaviors that withhold
// response headers.
func (c *conn) canSendHeaders(st *stream) bool {
	p := c.srv.profile
	if p.FlowControlHeaders {
		if st.window.Available() <= 0 || c.sendWindow.Available() <= 0 {
			return false
		}
	}
	if p.TinyWindow == TinyWindowSilent && len(st.body) > 0 &&
		st.window.Available() > 0 && st.window.Available() < tinyWindowThreshold {
		return false
	}
	return true
}

func (c *conn) flushHeaders() error {
	for _, st := range c.streamsByArrival() {
		if st.respHeaders == nil || st.headersWritten || !c.canSendHeaders(st) {
			continue
		}
		c.encBuf = c.enc.AppendBlock(c.encBuf[:0], st.respHeaders)
		block := c.encBuf
		endStream := len(st.body) == 0
		// Split across CONTINUATION frames if the block exceeds the
		// client's maximum frame size.
		first := block
		var rest []byte
		if uint32(len(block)) > c.maxSendFrame {
			first, rest = block[:c.maxSendFrame], block[c.maxSendFrame:]
		}
		err := c.fr.WriteHeaders(frame.HeadersParams{
			StreamID:   st.id,
			Fragment:   first,
			EndStream:  endStream,
			EndHeaders: len(rest) == 0,
		})
		if err != nil {
			return err
		}
		for len(rest) > 0 {
			chunk := rest
			if uint32(len(chunk)) > c.maxSendFrame {
				chunk = chunk[:c.maxSendFrame]
			}
			rest = rest[len(chunk):]
			if err := c.fr.WriteContinuation(st.id, len(rest) == 0, chunk); err != nil {
				return err
			}
		}
		st.headersWritten = true
		if endStream {
			c.closeStream(st.id)
		}
	}
	return nil
}

func (c *conn) streamsByArrival() []*stream {
	out := make([]*stream, 0, len(c.streams))
	for _, st := range c.streams {
		out = append(out, st)
	}
	// Insertion sort by arrival: stream counts are small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].arrival < out[j-1].arrival; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ready reports whether stream id can transmit at least one DATA byte.
// Streams stalled by the TinyWindowZeroData behavior are not ready: they
// emit empty DATA frames instead of real payload.
func (c *conn) ready(id uint32) bool {
	st, ok := c.streams[id]
	if !ok {
		return false
	}
	if !st.headersWritten || len(st.body) == 0 || st.window.Available() <= 0 {
		return false
	}
	if c.srv.profile.TinyWindow == TinyWindowZeroData {
		avail := st.window.Available()
		if avail < tinyWindowThreshold && avail < int64(len(st.body)) {
			return false
		}
	}
	return true
}

func (c *conn) flushData() error {
	p := c.srv.profile
	for guard := 0; guard < 1<<20; guard++ {
		if c.sendWindow.Available() <= 0 {
			c.noteConnStall()
			return c.maybeZeroData()
		}
		st := c.pickStream(p.Scheduling)
		if st == nil {
			c.noteStreamStalls()
			return c.maybeZeroData()
		}
		if err := c.sendQuantum(st); err != nil {
			return err
		}
	}
	return errors.New("server: flush loop guard tripped")
}

// pickStream selects the next stream for one DATA quantum.
func (c *conn) pickStream(mode SchedulingMode) *stream {
	switch mode {
	case SchedPriority:
		if id, ok := c.sched.Pick(c.ready); ok {
			return c.streams[id]
		}
		return nil
	case SchedPriorityLastOnly:
		// One eager quantum per stream in arrival order first.
		for _, st := range c.streamsByArrival() {
			if c.eagerPending[st.id] && c.ready(st.id) {
				delete(c.eagerPending, st.id)
				return st
			}
		}
		if id, ok := c.sched.Pick(c.ready); ok {
			return c.streams[id]
		}
		return nil
	case SchedPriorityFirstOnly:
		// First quanta in priority order, then round-robin.
		firstReady := func(id uint32) bool { return c.ready(id) && !c.firstSent[id] }
		if id, ok := c.sched.Pick(firstReady); ok {
			return c.streams[id]
		}
		return c.pickRoundRobin()
	case SchedSequential:
		// One whole response at a time, in arrival order: the oldest
		// stream with pending data always wins, and when it is
		// window-blocked nothing else transmits (true head-of-line
		// serialization, the anti-pattern multiplexing removes).
		for _, st := range c.streamsByArrival() {
			if !st.headersWritten || len(st.body) == 0 {
				continue
			}
			if c.ready(st.id) {
				return st
			}
			return nil
		}
		return nil
	default:
		return c.pickRoundRobin()
	}
}

func (c *conn) pickRoundRobin() *stream {
	order := c.streamsByArrival()
	if len(order) == 0 {
		return nil
	}
	for i := 0; i < len(order); i++ {
		st := order[(c.rrCursor+i)%len(order)]
		if c.ready(st.id) {
			c.rrCursor = (c.rrCursor + i + 1) % len(order)
			return st
		}
	}
	return nil
}

// sendQuantum transmits one DATA frame for st, sized by both windows and
// the client's maximum frame size.
func (c *conn) sendQuantum(st *stream) error {
	n := int64(len(st.body))
	n = st.window.ClampTake(n)
	n = c.sendWindow.ClampTake(n)
	if n > int64(c.maxSendFrame) {
		n = int64(c.maxSendFrame)
	}
	if n <= 0 {
		return nil
	}
	chunk := st.body[:n]
	end := int(n) == len(st.body)
	if err := c.fr.WriteData(st.id, end, chunk); err != nil {
		return err
	}
	if err := st.window.Consume(n); err != nil {
		return err
	}
	if err := c.sendWindow.Consume(n); err != nil {
		return err
	}
	st.body = st.body[n:]
	c.firstSent[st.id] = true
	if end {
		c.closeStream(st.id)
	}
	return nil
}

// maybeZeroData implements the TinyWindowZeroData population behavior:
// blocked streams with a sub-threshold window emit a single empty DATA
// frame per window state.
func (c *conn) maybeZeroData() error {
	if c.srv.profile.TinyWindow != TinyWindowZeroData {
		return nil
	}
	for _, st := range c.streamsByArrival() {
		if !st.headersWritten || len(st.body) == 0 || st.zeroDataSent {
			continue
		}
		avail := st.window.Available()
		if avail >= tinyWindowThreshold || avail >= int64(len(st.body)) {
			continue
		}
		if err := c.fr.WriteData(st.id, false, nil); err != nil {
			return err
		}
		st.zeroDataSent = true
	}
	return nil
}
