package server

import (
	"strings"
	"sync"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/metrics"
	"h2scope/internal/trace"
)

// This file is the defense half of the adversarial battery (see
// internal/attack): a real-time, per-connection event-sequence detector in
// the spirit of "Delays have Dangerous Ends" (slow HTTP/2 DoS detection via
// event-sequence analysis). The detector consumes the server's existing
// trace bus through a bounded trace.Subscription — the same event stream
// every other observer uses — and keeps a sliding window of sequence
// statistics per connection: frame-type rates, the reset ratio, header/data
// byte asymmetry, and window-update starvation time. Windows are scored
// against per-profile thresholds (the Table III personalities tolerate
// different client behavior), and a firing score triggers a mitigation:
// rate-limiting the connection's read loop, capping its concurrent streams,
// or GOAWAY(ENHANCE_YOUR_CALM) plus close.

// AttackKind names a detected attack pattern. The vocabulary matches the
// scenario catalog in internal/attack.
type AttackKind string

// Detected attack kinds.
const (
	// AttackRapidReset is HEADERS+RST_STREAM churn (CVE-2023-44487 shape).
	AttackRapidReset AttackKind = "rapid-reset"
	// AttackSlowDrip is a drip-fed request body pinning stream state.
	AttackSlowDrip AttackKind = "slow-drip"
	// AttackSettingsFlood is a SETTINGS frame flood forcing ACK work.
	AttackSettingsFlood AttackKind = "settings-flood"
	// AttackZeroWindowStarve is a receiver that requests data and never
	// opens its flow-control windows.
	AttackZeroWindowStarve AttackKind = "zero-window-starvation"
	// AttackHPACKBomb is a header block that decompresses massively.
	AttackHPACKBomb AttackKind = "hpack-bomb"
	// AttackContinuationFlood is an unterminated CONTINUATION sequence.
	AttackContinuationFlood AttackKind = "continuation-flood"
)

// AttackKinds lists every kind the detector can report, in catalog order.
func AttackKinds() []AttackKind {
	return []AttackKind{
		AttackRapidReset, AttackSlowDrip, AttackSettingsFlood,
		AttackZeroWindowStarve, AttackHPACKBomb, AttackContinuationFlood,
	}
}

// MitigationAction is what the detector does to a flagged connection.
type MitigationAction string

// Mitigation actions, mildest first.
const (
	// ActionNone records the detection without touching the connection.
	ActionNone MitigationAction = "none"
	// ActionRateLimit delays the connection's read loop between frames.
	ActionRateLimit MitigationAction = "rate-limit"
	// ActionStreamCap refuses new streams beyond a small cap.
	ActionStreamCap MitigationAction = "stream-cap"
	// ActionGoAway sends GOAWAY(ENHANCE_YOUR_CALM) and closes the socket.
	ActionGoAway MitigationAction = "goaway"
)

// Thresholds are the per-signal firing levels one connection is scored
// against. Rates are events per second sustained across the sliding window;
// a signal's ratio is observed/threshold and the connection's score is the
// maximum ratio, so a score >= 1 means at least one signal fired.
type Thresholds struct {
	// HeaderRate is the HEADERS-received rate (streams opened per second).
	HeaderRate float64
	// ResetRate is the RST_STREAM-received rate. MinResets gates it so a
	// handful of legitimate cancellations can never fire; ResetRatio
	// additionally requires resets to track stream opens (churn, not
	// cleanup after an error burst).
	ResetRate  float64
	MinResets  int
	ResetRatio float64
	// SettingsRate is the non-ACK SETTINGS-received rate.
	SettingsRate float64
	// ContinuationRate is the CONTINUATION-received rate.
	ContinuationRate float64
	// AsymmetryMinBytes and AsymmetryFactor detect header/data byte
	// asymmetry: the signal fires when at least AsymmetryMinBytes of
	// header-block payload arrived in the window while the server sent
	// less than received/AsymmetryFactor bytes of DATA back — the HPACK
	// bomb and CONTINUATION spam shape. The ratio is bytes/minimum.
	AsymmetryMinBytes int
	AsymmetryFactor   float64
	// TinyDataRate is the rate of sub-TinyDataBytes non-END_STREAM DATA
	// frames — the slow-drip signature.
	TinyDataRate  float64
	TinyDataBytes int
	// StarvationTime is how long the connection may hold requests open
	// with zero transmit progress (no DATA sent, no WINDOW_UPDATE
	// received, nothing completing) before the starvation signal fires.
	StarvationTime time.Duration
}

// DefaultThresholds returns the baseline personality-independent levels.
// They are set an order of magnitude above anything the conformance suite,
// the probe battery, or a page load produces on one connection, so replaying
// that traffic yields no detections.
func DefaultThresholds() Thresholds {
	return Thresholds{
		HeaderRate:        300,
		ResetRate:         60,
		MinResets:         20,
		ResetRatio:        0.5,
		SettingsRate:      40,
		ContinuationRate:  30,
		AsymmetryMinBytes: 8 << 10,
		AsymmetryFactor:   4,
		TinyDataRate:      10,
		TinyDataBytes:     16,
		StarvationTime:    2 * time.Second,
	}
}

// ThresholdsForProfile keys the baseline off a Table III personality.
// Profiles that advertise more concurrency tolerate proportionally faster
// stream churn, and LiteSpeed's flow-controlled HEADERS make honest clients
// with small windows look starved for longer, so its starvation fuse is
// slower.
func ThresholdsForProfile(p Profile) Thresholds {
	t := DefaultThresholds()
	if p.AdvertiseMaxStreams && p.MaxConcurrentStreams > 0 {
		// Tolerate three full refills of the advertised stream limit per
		// second before calling churn an attack.
		if r := 3 * float64(p.MaxConcurrentStreams); r > t.HeaderRate {
			t.HeaderRate = r
		}
	}
	if p.FlowControlHeaders {
		t.StarvationTime *= 2
	}
	if p.TinyWindow != TinyWindowComply {
		// Personalities that misbehave under tiny windows see more
		// zero-length client DATA in legitimate retry traffic.
		t.TinyDataRate *= 2
	}
	return t
}

// DetectorConfig tunes the sliding window and the mitigation matrix.
type DetectorConfig struct {
	// Window is the sliding-window span (default 1s) and Buckets its
	// subdivision (default 8): rates are computed over the last Window
	// seconds with Window/Buckets eviction granularity.
	Window  time.Duration
	Buckets int
	// SweepInterval is how often idle connections are re-scored (the
	// starvation signal advances with wall time, not events); default
	// Window/Buckets.
	SweepInterval time.Duration
	// SubscriptionBuffer bounds the trace subscription queue (default
	// trace.DefaultSubscriptionBuffer).
	SubscriptionBuffer int
	// Thresholds overrides ThresholdsForProfile when non-zero (a zero
	// Thresholds struct selects the profile defaults).
	Thresholds Thresholds
	// Actions overrides entries of DefaultMitigations.
	Actions map[AttackKind]MitigationAction
	// OnDetect, when non-nil, observes every detection (after metrics and
	// mitigation bookkeeping). Called from the detector goroutine.
	OnDetect func(Detection)
}

// DefaultMitigations is the kind-to-action matrix: protocol floods draw
// GOAWAY+close, the slow shapes draw containment first (a capped or
// rate-limited attacker is evidence; a closed one reconnects).
func DefaultMitigations() map[AttackKind]MitigationAction {
	return map[AttackKind]MitigationAction{
		AttackRapidReset:        ActionGoAway,
		AttackSlowDrip:          ActionStreamCap,
		AttackSettingsFlood:     ActionRateLimit,
		AttackZeroWindowStarve:  ActionGoAway,
		AttackHPACKBomb:         ActionGoAway,
		AttackContinuationFlood: ActionGoAway,
	}
}

// escalationScore promotes a contained-but-still-misbehaving connection
// (rate-limited or stream-capped) to GOAWAY when its score keeps climbing.
const escalationScore = 4.0

// Detection is one flagged connection.
type Detection struct {
	// At is the sweep time of the detection.
	At time.Time
	// Conn is the server's trace connection ID.
	Conn uint64
	// Kind is the classified attack pattern and Score its firing ratio.
	Kind  AttackKind
	Score float64
	// Action is the mitigation applied (ActionNone when the connection
	// had already ended or mitigation is disabled).
	Action MitigationAction
	// Fingerprint is the connection's akamai-format HTTP/2 behavioral
	// fingerprint, when the client completed a request before being
	// flagged ("" otherwise — frame floods often never get that far).
	Fingerprint string
}

// Detector scores live connections in real time and mitigates the ones that
// cross their thresholds. Construct with Server.StartDetector.
type Detector struct {
	cfg     DetectorConfig
	th      Thresholds
	actions map[AttackKind]MitigationAction
	sub     *trace.Subscription
	now     func() time.Time

	mu         sync.Mutex
	states     map[uint64]*connStats
	targets    map[uint64]*conn
	detections []Detection

	detected  map[AttackKind]*metrics.Counter
	mitigated map[MitigationAction]*metrics.Counter

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	scratch []trace.Event
}

// StartDetector attaches a real-time attack detector to the server and
// starts its consumer goroutine. It must be called before serving: it
// installs a trace bus (reusing s.Trace when already set) and registers
// every subsequent connection for mitigation. Thresholds default to
// ThresholdsForProfile(s.Profile()). reg, when non-nil, receives
// h2_attacks_detected_total{kind} and h2_mitigations_total{action}
// counters. The detector stops when the server closes (or via Stop).
func (s *Server) StartDetector(cfg DetectorConfig, reg *metrics.Registry) *Detector {
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 8
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.Window / time.Duration(cfg.Buckets)
	}
	th := cfg.Thresholds
	if th == (Thresholds{}) {
		th = ThresholdsForProfile(s.profile)
	}
	actions := DefaultMitigations()
	for k, a := range cfg.Actions {
		actions[k] = a
	}
	if s.Trace == nil {
		s.Trace = trace.New(0)
	}
	d := &Detector{
		cfg:       cfg,
		th:        th,
		actions:   actions,
		sub:       s.Trace.Subscribe(cfg.SubscriptionBuffer),
		now:       time.Now,
		states:    make(map[uint64]*connStats),
		targets:   make(map[uint64]*conn),
		detected:  make(map[AttackKind]*metrics.Counter),
		mitigated: make(map[MitigationAction]*metrics.Counter),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, k := range AttackKinds() {
		d.detected[k] = d.counter(reg, metrics.Label("h2_attacks_detected_total", "kind", string(k)),
			"connections flagged by the attack detector")
	}
	for _, a := range []MitigationAction{ActionNone, ActionRateLimit, ActionStreamCap, ActionGoAway} {
		d.mitigated[a] = d.counter(reg, metrics.Label("h2_mitigations_total", "action", string(a)),
			"mitigations applied to flagged connections")
	}
	if reg != nil {
		// Queue health alongside the ring gauges: a climbing sub-drop count
		// means the detector is lagging the bus and may miss attack frames.
		d.sub.ExportMetrics(reg, "detector")
	}
	s.mu.Lock()
	s.det = d
	s.mu.Unlock()
	go d.loop()
	return d
}

func (d *Detector) counter(reg *metrics.Registry, name, help string) *metrics.Counter {
	if reg == nil {
		return metrics.NewCounter()
	}
	return reg.Counter(name, help)
}

// Stop ends the detector goroutine and detaches it from the trace bus. Safe
// to call multiple times, including concurrently; the server's Close calls
// it automatically.
func (d *Detector) Stop() {
	if d == nil {
		return
	}
	// A select-on-closed guard here would race: two concurrent Stops could
	// both see the channel open and both close it. Once serializes them.
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
	d.sub.Close()
}

// Detections returns a copy of every detection so far, in order.
func (d *Detector) Detections() []Detection {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Detection(nil), d.detections...)
}

// DetectedTotal returns the running count for one kind (whether or not a
// metrics registry was supplied).
func (d *Detector) DetectedTotal(kind AttackKind) int64 {
	if d == nil {
		return 0
	}
	if c, ok := d.detected[kind]; ok {
		return c.Value()
	}
	return 0
}

// register attaches a live connection for mitigation, keyed by its trace
// connection ID.
func (d *Detector) register(id uint64, c *conn) {
	d.mu.Lock()
	d.targets[id] = c
	d.mu.Unlock()
}

func (d *Detector) unregister(id uint64) {
	d.mu.Lock()
	delete(d.targets, id)
	d.mu.Unlock()
}

// loop is the detector goroutine: drain the subscription, fold events into
// per-connection windows, and sweep scores. A ticker backs the wakeup
// channel because the deadliest slow attacks generate no events at all —
// starvation advances with wall time.
func (d *Detector) loop() {
	defer close(d.done)
	ticker := time.NewTicker(d.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-d.sub.C():
		case <-ticker.C:
		}
		d.scratch = d.sub.Drain(d.scratch[:0])
		d.mu.Lock()
		for i := range d.scratch {
			d.observeLocked(&d.scratch[i])
		}
		d.sweepLocked(d.now())
		d.mu.Unlock()
	}
}

// observeLocked folds one trace event into its connection's window.
func (d *Detector) observeLocked(ev *trace.Event) {
	if ev.Conn == 0 {
		return
	}
	switch ev.Kind {
	case trace.KindConnClose:
		// Final score before the state is discarded: fast floods (an HPACK
		// bomb, a CONTINUATION burst) often die against the engine's
		// protocol bounds within one sweep interval, and the detection
		// must still be recorded even though there is nothing to mitigate.
		if st, ok := d.states[ev.Conn]; ok {
			d.scoreLocked(ev.Conn, st, ev.At)
			delete(d.states, ev.Conn)
		}
		return
	case trace.KindConnOpen:
		d.stateLocked(ev.Conn, ev.At)
		return
	case trace.KindFrameSent, trace.KindFrameRecv, trace.KindError:
		d.stateLocked(ev.Conn, ev.At).observe(ev)
	}
}

func (d *Detector) stateLocked(id uint64, at time.Time) *connStats {
	st, ok := d.states[id]
	if !ok {
		st = newConnStats(d.cfg.Window, d.cfg.Buckets, d.th.TinyDataBytes, at)
		d.states[id] = st
	}
	return st
}

// sweepLocked re-scores every live connection and fires mitigations.
func (d *Detector) sweepLocked(now time.Time) {
	for id, st := range d.states {
		d.scoreLocked(id, st, now)
	}
}

// scoreLocked scores one connection, firing its detection and mitigation
// (or escalating an already-contained one).
func (d *Detector) scoreLocked(id uint64, st *connStats, now time.Time) {
	if st.flagged {
		// Already detected once: only escalate contained actions.
		if st.action == ActionRateLimit || st.action == ActionStreamCap {
			if score, _ := st.score(now, &d.th); score >= escalationScore {
				if c := d.targets[id]; c != nil {
					c.mitigateGoAway()
				}
				st.action = ActionGoAway
				d.mitigated[ActionGoAway].Inc()
			}
		}
		return
	}
	score, kind := st.score(now, &d.th)
	if score < 1 {
		return
	}
	st.flagged = true
	action := d.actions[kind]
	if action == "" {
		action = ActionNone
	}
	c := d.targets[id]
	if c == nil {
		// The connection already ended (floods often kill themselves
		// against protocol bounds before the sweep); record the detection,
		// mitigate nothing.
		action = ActionNone
	} else {
		switch action {
		case ActionRateLimit:
			c.mitigateRateLimit(d.cfg.SweepInterval)
		case ActionStreamCap:
			c.mitigateStreamCap(2)
		case ActionGoAway:
			c.mitigateGoAway()
		}
	}
	st.action = action
	d.detected[kind].Inc()
	d.mitigated[action].Inc()
	det := Detection{At: now, Conn: id, Kind: kind, Score: score, Action: action}
	if c != nil {
		if fp := c.fpAkamai.Load(); fp != nil {
			det.Fingerprint = *fp
		}
	}
	d.detections = append(d.detections, det)
	if d.cfg.OnDetect != nil {
		d.cfg.OnDetect(det)
	}
}

// --- per-connection sliding window ---

// maxTrackedStreams bounds the open-request set a hostile peer can grow; a
// connection holding more half-open requests than this is scored as starved
// regardless (the set stops admitting, the count keeps climbing).
const maxTrackedStreams = 1024

// statBucket is one granule of the sliding window.
type statBucket struct {
	headersRecv      int
	rstRecv          int
	settingsRecv     int
	continuationRecv int
	tinyDataRecv     int
	headerBytesRecv  int
	dataBytesSent    int
	decodeErrors     int
}

func (b *statBucket) reset() { *b = statBucket{} }

// connStats is one connection's sliding-window sequence statistics. Buckets
// are indexed by absolute time (UnixNano / granule), so feeding the same
// timestamped events always lands them in the same buckets — the property
// the fuzz and equivalence tests pin. Events older than the window are
// ignored; advancing time evicts whole buckets and never resurrects counts.
type connStats struct {
	granule time.Duration
	buckets []statBucket
	cur     int64 // absolute index of the newest bucket
	// tinyBytes is the Thresholds.TinyDataBytes cut applied when bucketing
	// DATA frames (fixed at window creation).
	tinyBytes int

	// openReqs tracks streams with a request seen and no terminal event;
	// lastProgress is the last time the connection transmitted DATA,
	// received a WINDOW_UPDATE, or completed a stream.
	openReqs     map[uint32]struct{}
	openOverflow int
	lastProgress time.Time

	// flagged and action are the detector's bookkeeping for this conn.
	flagged bool
	action  MitigationAction
}

func newConnStats(window time.Duration, buckets, tinyBytes int, at time.Time) *connStats {
	g := window / time.Duration(buckets)
	if g <= 0 {
		g = time.Millisecond
	}
	if tinyBytes <= 0 {
		tinyBytes = DefaultThresholds().TinyDataBytes
	}
	return &connStats{
		granule:      g,
		buckets:      make([]statBucket, buckets),
		cur:          at.UnixNano() / int64(g),
		tinyBytes:    tinyBytes,
		openReqs:     make(map[uint32]struct{}),
		lastProgress: at,
	}
}

// advance moves the window head to absolute index idx, evicting buckets
// that fell out. Moving backwards is a no-op (out-of-order events land in
// their own, still-retained buckets).
func (s *connStats) advance(idx int64) {
	if idx <= s.cur {
		return
	}
	n := int64(len(s.buckets))
	if idx-s.cur >= n {
		for i := range s.buckets {
			s.buckets[i].reset()
		}
	} else {
		for i := s.cur + 1; i <= idx; i++ {
			s.buckets[i%n].reset()
		}
	}
	s.cur = idx
}

// bucketFor returns the bucket for an event at absolute index idx, or nil
// when the event predates the retained window.
func (s *connStats) bucketFor(idx int64) *statBucket {
	s.advance(idx)
	if idx <= s.cur-int64(len(s.buckets)) {
		return nil
	}
	return &s.buckets[idx%int64(len(s.buckets))]
}

// observe folds one frame or error event into the window.
func (s *connStats) observe(ev *trace.Event) {
	idx := ev.At.UnixNano() / int64(s.granule)
	b := s.bucketFor(idx)
	if b == nil {
		return
	}
	switch ev.Kind {
	case trace.KindError:
		if strings.Contains(ev.Detail, "hpack") || strings.Contains(ev.Detail, "header list") {
			b.decodeErrors++
		}
	case trace.KindFrameRecv:
		switch ev.FrameType {
		case frame.TypeHeaders:
			// A complete one-frame request still counts as open server-side
			// until the response ends; DATA-sent below closes it.
			b.headersRecv++
			b.headerBytesRecv += ev.Length
			s.trackRequest(ev.StreamID)
		case frame.TypeContinuation:
			b.continuationRecv++
			b.headerBytesRecv += ev.Length
		case frame.TypeRSTStream:
			b.rstRecv++
			s.endRequest(ev.StreamID, ev.At)
		case frame.TypeSettings:
			if !ev.Flags.Has(frame.FlagAck) {
				b.settingsRecv++
			}
		case frame.TypeWindowUpdate:
			s.lastProgress = ev.At
		case frame.TypeData:
			if !ev.Flags.Has(frame.FlagEndStream) && ev.Length < s.tinyBytes {
				b.tinyDataRecv++
			}
		}
	case trace.KindFrameSent:
		switch ev.FrameType {
		case frame.TypeData:
			if ev.Length > 0 {
				b.dataBytesSent += ev.Length
				s.lastProgress = ev.At
			}
			if ev.Flags.Has(frame.FlagEndStream) {
				s.endRequest(ev.StreamID, ev.At)
			}
		case frame.TypeHeaders:
			if ev.Flags.Has(frame.FlagEndStream) {
				s.endRequest(ev.StreamID, ev.At)
			}
		case frame.TypeRSTStream:
			s.endRequest(ev.StreamID, ev.At)
		}
	}
}

func (s *connStats) trackRequest(id uint32) {
	if _, ok := s.openReqs[id]; ok {
		return
	}
	if len(s.openReqs) >= maxTrackedStreams {
		s.openOverflow++
		return
	}
	s.openReqs[id] = struct{}{}
}

func (s *connStats) endRequest(id uint32, at time.Time) {
	if _, ok := s.openReqs[id]; ok {
		delete(s.openReqs, id)
		s.lastProgress = at
	} else if s.openOverflow > 0 {
		s.openOverflow--
	}
}

// totals sums the retained window after advancing it to now.
func (s *connStats) totals(now time.Time) statBucket {
	s.advance(now.UnixNano() / int64(s.granule))
	var t statBucket
	for i := range s.buckets {
		b := &s.buckets[i]
		t.headersRecv += b.headersRecv
		t.rstRecv += b.rstRecv
		t.settingsRecv += b.settingsRecv
		t.continuationRecv += b.continuationRecv
		t.tinyDataRecv += b.tinyDataRecv
		t.headerBytesRecv += b.headerBytesRecv
		t.dataBytesSent += b.dataBytesSent
		t.decodeErrors += b.decodeErrors
	}
	return t
}

// score computes the connection's attack score: the maximum ratio of any
// signal over its threshold, with the responsible kind. Scores are never
// negative; a score below 1 means no signal fired.
func (s *connStats) score(now time.Time, th *Thresholds) (float64, AttackKind) {
	t := s.totals(now)
	window := s.granule * time.Duration(len(s.buckets))
	secs := window.Seconds()
	if secs <= 0 {
		secs = 1
	}
	best, kind := 0.0, AttackRapidReset

	bump := func(ratio float64, k AttackKind) {
		if ratio > best {
			best, kind = ratio, k
		}
	}

	// Reset churn: rate-gated by an absolute floor and the reset:open
	// ratio, so bursts of legitimate cancellations stay under it.
	if th.ResetRate > 0 && t.rstRecv >= th.MinResets {
		opens := t.headersRecv
		if opens == 0 {
			opens = 1
		}
		if float64(t.rstRecv)/float64(opens) >= th.ResetRatio {
			bump(float64(t.rstRecv)/secs/th.ResetRate, AttackRapidReset)
		}
	}
	if th.HeaderRate > 0 {
		bump(float64(t.headersRecv)/secs/th.HeaderRate, AttackRapidReset)
	}
	if th.SettingsRate > 0 {
		bump(float64(t.settingsRecv)/secs/th.SettingsRate, AttackSettingsFlood)
	}
	if th.ContinuationRate > 0 {
		bump(float64(t.continuationRecv)/secs/th.ContinuationRate, AttackContinuationFlood)
	}
	// Header/data byte asymmetry: lots of header-block bytes in, almost
	// nothing out. A decode error in the window is corroborating evidence
	// and halves the byte bar.
	if th.AsymmetryMinBytes > 0 && th.AsymmetryFactor > 0 {
		minBytes := th.AsymmetryMinBytes
		if t.decodeErrors > 0 {
			minBytes /= 2
		}
		if t.headerBytesRecv > 0 && float64(t.headerBytesRecv) > th.AsymmetryFactor*float64(t.dataBytesSent) {
			bump(float64(t.headerBytesRecv)/float64(minBytes), AttackHPACKBomb)
		}
	}
	if th.TinyDataRate > 0 {
		bump(float64(t.tinyDataRecv)/secs/th.TinyDataRate, AttackSlowDrip)
	}
	if th.StarvationTime > 0 && (len(s.openReqs) > 0 || s.openOverflow > 0) {
		if starved := now.Sub(s.lastProgress); starved > 0 {
			bump(float64(starved)/float64(th.StarvationTime), AttackZeroWindowStarve)
		}
	}
	if best < 0 {
		best = 0
	}
	return best, kind
}
