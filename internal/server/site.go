package server

import (
	"fmt"
	"sort"
	"strconv"

	"h2scope/internal/hpack"
)

// Resource is one servable web object.
type Resource struct {
	// Path is the request path, e.g. "/" or "/static/app.js".
	Path string
	// ContentType is the media type sent in the response headers.
	ContentType string
	// Body is the response payload.
	Body []byte
	// Push lists paths the server pushes when this resource is requested
	// and the profile (and client) enable server push.
	Push []string
	// ExtraHeaders are appended to the standard response header set,
	// e.g. cache-control or set-cookie fields.
	ExtraHeaders []hpack.HeaderField
}

// Site is a virtual web site: a domain plus its document tree. Sites are
// immutable once serving starts; build them fully before passing to a
// Server.
type Site struct {
	// Domain is the authority this site answers as, e.g. "example.org".
	Domain string

	resources map[string]*Resource
}

// NewSite returns an empty site for domain.
func NewSite(domain string) *Site {
	return &Site{
		Domain:    domain,
		resources: make(map[string]*Resource),
	}
}

// Add registers a resource, replacing any previous resource at its path.
func (s *Site) Add(r *Resource) *Site {
	s.resources[r.Path] = r
	return s
}

// AddPage registers an HTML page with the given body.
func (s *Site) AddPage(path, body string) *Site {
	return s.Add(&Resource{Path: path, ContentType: "text/html; charset=utf-8", Body: []byte(body)})
}

// AddObject registers an opaque object of the given size with a
// deterministic, mildly compressible payload.
func (s *Site) AddObject(path string, size int) *Site {
	body := make([]byte, size)
	for i := range body {
		body[i] = byte('a' + (i+len(path))%26)
	}
	return s.Add(&Resource{Path: path, ContentType: "application/octet-stream", Body: body})
}

// SetPush attaches a push manifest to the resource at path. It panics if
// the resource does not exist (a programming error in site construction).
func (s *Site) SetPush(path string, pushed ...string) *Site {
	r, ok := s.resources[path]
	if !ok {
		panic(fmt.Sprintf("server: SetPush on unknown path %q", path))
	}
	r.Push = append(r.Push[:0], pushed...)
	return s
}

// Lookup returns the resource at path.
func (s *Site) Lookup(path string) (*Resource, bool) {
	r, ok := s.resources[path]
	return r, ok
}

// Paths returns all registered paths, sorted.
func (s *Site) Paths() []string {
	out := make([]string, 0, len(s.resources))
	for p := range s.resources {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// DefaultSite builds the testbed document tree used throughout the
// reproduction: a front page, a set of subresources for page-load and push
// experiments, and large objects for the multiplexing and priority probes
// (the paper places "large web objects" on the testbed server because
// multiplexing is unobservable on small responses).
func DefaultSite(domain string) *Site {
	s := NewSite(domain)
	s.AddPage("/", indexBody(domain))
	s.AddPage("/about.html", "<html><body><h1>About "+domain+"</h1></body></html>")
	s.AddObject("/static/app.js", 24*1024)
	s.AddObject("/static/style.css", 8*1024)
	s.AddObject("/static/logo.png", 16*1024)
	s.AddObject("/static/hero.jpg", 48*1024)
	// The front page carries a push manifest; whether PUSH_PROMISE is ever
	// sent is the profile's decision (Table III row "Server Push").
	s.SetPush("/", "/static/style.css", "/static/app.js")
	// Large objects: several DATA frames each at the default 16 KiB max
	// frame size, so interleaving is observable.
	for i := 1; i <= 8; i++ {
		s.AddObject("/large/"+strconv.Itoa(i), 96*1024)
	}
	// Drain objects sized for the priority probe's window-depletion step.
	s.AddObject("/drain/64k", 64*1024)
	s.AddObject("/drain/16k", 16*1024)
	return s
}

func indexBody(domain string) string {
	return `<html><head>
<title>` + domain + `</title>
<link rel="stylesheet" href="/static/style.css">
<script src="/static/app.js"></script>
</head><body>
<img src="/static/logo.png"><img src="/static/hero.jpg">
<h1>Welcome to ` + domain + `</h1>
</body></html>`
}
