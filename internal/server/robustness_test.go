package server_test

import (
	"crypto/tls"
	"io"
	"net"
	"testing"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/hpack"
	"h2scope/internal/metrics"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
	"h2scope/internal/tlsutil"
)

// rawConn dials the server and returns a raw framer after sending the
// preface, bypassing h2conn's conveniences.
func rawConn(t *testing.T, l *netsim.Listener) (*frame.Framer, net.Conn) {
	t.Helper()
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = nc.Close()
	})
	if _, err := io.WriteString(nc, frame.ClientPreface); err != nil {
		t.Fatal(err)
	}
	fr := frame.NewFramer(nc, nc)
	if err := fr.WriteSettings(); err != nil {
		t.Fatal(err)
	}
	return fr, nc
}

func startRaw(t *testing.T, p server.Profile) *netsim.Listener {
	t.Helper()
	srv := server.New(p, server.DefaultSite("raw.example"))
	l := netsim.NewListener("raw")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	return l
}

// waitFrameType reads until a frame of the wanted type or EOF/error. The
// returned frame is detached with CopyPayload: callers keep it across
// further reads on the same framer.
func waitFrameType(t *testing.T, fr *frame.Framer, want frame.Type) frame.Frame {
	t.Helper()
	for i := 0; i < 64; i++ {
		f, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("waiting for %v: %v", want, err)
		}
		if f.Header().Type == want {
			return frame.CopyPayload(f)
		}
	}
	t.Fatalf("no %v frame", want)
	return nil
}

func TestBadPrefaceClosesConnection(t *testing.T) {
	l := startRaw(t, server.NginxProfile())
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	if _, err := io.WriteString(nc, "GET / HTTP/1.1\r\nHost: x\r\n\r\n padding-to-24"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		// Server may send nothing; any read must eventually error out.
		if _, err := io.ReadAll(nc); err != nil && err != io.EOF {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestMalformedHPACKDrawsCompressionError(t *testing.T) {
	l := startRaw(t, server.ApacheProfile())
	fr, _ := rawConn(t, l)
	// An indexed-field reference to index 200 with an empty dynamic table.
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID:   1,
		Fragment:   []byte{0x80 | 0x7f, 0x79}, // index 127+121 = 248
		EndStream:  true,
		EndHeaders: true,
	}); err != nil {
		t.Fatal(err)
	}
	ga := waitFrameType(t, fr, frame.TypeGoAway).(*frame.GoAwayFrame)
	if ga.Code != frame.ErrCodeCompression {
		t.Errorf("GOAWAY code = %v, want COMPRESSION_ERROR", ga.Code)
	}
}

func TestInvalidEnablePushSettingDrawsGoAway(t *testing.T) {
	l := startRaw(t, server.H2OProfile())
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	if _, err := io.WriteString(nc, frame.ClientPreface); err != nil {
		t.Fatal(err)
	}
	fr := frame.NewFramer(nc, nc)
	if err := fr.WriteSettings(frame.Setting{ID: frame.SettingEnablePush, Val: 2}); err != nil {
		t.Fatal(err)
	}
	ga := waitFrameType(t, fr, frame.TypeGoAway).(*frame.GoAwayFrame)
	if ga.Code != frame.ErrCodeProtocol {
		t.Errorf("GOAWAY code = %v, want PROTOCOL_ERROR", ga.Code)
	}
}

func TestEvenStreamIDFromClientDrawsGoAway(t *testing.T) {
	l := startRaw(t, server.NginxProfile())
	fr, _ := rawConn(t, l)
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	block := enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "raw.example"},
		{Name: ":path", Value: "/"},
	})
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID: 2, Fragment: block, EndStream: true, EndHeaders: true,
	}); err != nil {
		t.Fatal(err)
	}
	ga := waitFrameType(t, fr, frame.TypeGoAway).(*frame.GoAwayFrame)
	if ga.Code != frame.ErrCodeProtocol {
		t.Errorf("GOAWAY code = %v, want PROTOCOL_ERROR", ga.Code)
	}
}

func TestRequestHeadersAcrossContinuation(t *testing.T) {
	l := startRaw(t, server.NginxProfile())
	fr, _ := rawConn(t, l)
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	block := enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "raw.example"},
		{Name: ":path", Value: "/about.html"},
		{Name: "user-agent", Value: "continuation-test/1.0"},
	})
	half := len(block) / 2
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID: 1, Fragment: block[:half], EndStream: true, EndHeaders: false,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteContinuation(1, true, block[half:]); err != nil {
		t.Fatal(err)
	}
	hf := waitFrameType(t, fr, frame.TypeHeaders).(*frame.HeadersFrame)
	dec := hpack.NewDecoder(hpack.DefaultDynamicTableSize)
	fields, err := dec.DecodeFull(hf.Fragment)
	if err != nil {
		t.Fatal(err)
	}
	status := ""
	for _, f := range fields {
		if f.Name == ":status" {
			status = f.Value
		}
	}
	if status != "200" {
		t.Errorf("status = %q, want 200 (fields %v)", status, fields)
	}
}

func TestInterleavedFrameDuringContinuationDrawsGoAway(t *testing.T) {
	l := startRaw(t, server.NginxProfile())
	fr, _ := rawConn(t, l)
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	block := enc.EncodeBlock([]hpack.HeaderField{{Name: ":method", Value: "GET"}})
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID: 1, Fragment: block, EndStream: true, EndHeaders: false,
	}); err != nil {
		t.Fatal(err)
	}
	// A PING in the middle of a header block is a connection error
	// (RFC 7540 section 6.10).
	if err := fr.WritePing(false, [8]byte{}); err != nil {
		t.Fatal(err)
	}
	ga := waitFrameType(t, fr, frame.TypeGoAway).(*frame.GoAwayFrame)
	if ga.Code != frame.ErrCodeProtocol {
		t.Errorf("GOAWAY code = %v, want PROTOCOL_ERROR", ga.Code)
	}
}

func TestClientDataOverflowingConnWindowDrawsFlowControlError(t *testing.T) {
	l := startRaw(t, server.ApacheProfile())
	fr, _ := rawConn(t, l)
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	block := enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":method", Value: "POST"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "raw.example"},
		{Name: ":path", Value: "/"},
	})
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID: 1, Fragment: block, EndHeaders: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Flood past the server's 65,535-octet connection receive window.
	chunk := make([]byte, 16384)
	var sawGoAway bool
	for i := 0; i < 8 && !sawGoAway; i++ {
		if err := fr.WriteData(1, false, chunk); err != nil {
			break // server likely tore the connection down already
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		f, err := fr.ReadFrame()
		if err != nil {
			break
		}
		if ga, ok := f.(*frame.GoAwayFrame); ok {
			if ga.Code != frame.ErrCodeFlowControl {
				t.Errorf("GOAWAY code = %v, want FLOW_CONTROL_ERROR", ga.Code)
			}
			sawGoAway = true
			break
		}
	}
	if !sawGoAway {
		t.Fatal("no GOAWAY after flooding the connection window")
	}
}

func TestAbruptClientCloseDoesNotWedgeServer(t *testing.T) {
	srv := server.New(server.H2OProfile(), server.DefaultSite("raw.example"))
	l := netsim.NewListener("abrupt")
	go func() {
		_ = srv.Serve(l)
	}()
	// Open and abandon a handful of mid-request connections.
	for i := 0; i < 5; i++ {
		nc, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.WriteString(nc, frame.ClientPreface)
		_ = nc.Close()
	}
	// The server must still accept and serve new connections.
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.FetchBody(h2conn.Request{Authority: "raw.example", Path: "/"}, 5*time.Second)
	if err != nil {
		t.Fatalf("FetchBody after abrupt closes: %v", err)
	}
	if resp.Status() != "200" {
		t.Errorf("status = %q", resp.Status())
	}
	_ = c.Close()
	srv.Close() // must return promptly with no wedged goroutines
}

func TestPingFloodStaysResponsive(t *testing.T) {
	l := startRaw(t, server.NginxProfile())
	fr, _ := rawConn(t, l)
	const pings = 500
	go func() {
		for i := 0; i < pings; i++ {
			var data [8]byte
			data[0], data[1] = byte(i>>8), byte(i)
			if err := fr.WritePing(false, data); err != nil {
				return
			}
		}
	}()
	acks := 0
	deadline := time.Now().Add(5 * time.Second)
	for acks < pings && time.Now().Before(deadline) {
		f, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if pf, ok := f.(*frame.PingFrame); ok && pf.IsAck() {
			acks++
		}
	}
	if acks != pings {
		t.Fatalf("acks = %d, want %d", acks, pings)
	}
}

func TestHeaderTableSizeShrinkEmitsTableSizeUpdate(t *testing.T) {
	// A client shrinking SETTINGS_HEADER_TABLE_SIZE must see the server's
	// next header block start with a dynamic table size update.
	l := startRaw(t, server.H2OProfile())
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	if _, err := io.WriteString(nc, frame.ClientPreface); err != nil {
		t.Fatal(err)
	}
	fr := frame.NewFramer(nc, nc)
	if err := fr.WriteSettings(frame.Setting{ID: frame.SettingHeaderTableSize, Val: 0}); err != nil {
		t.Fatal(err)
	}
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	block := enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "raw.example"},
		{Name: ":path", Value: "/about.html"},
	})
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID: 1, Fragment: block, EndStream: true, EndHeaders: true,
	}); err != nil {
		t.Fatal(err)
	}
	hf := waitFrameType(t, fr, frame.TypeHeaders).(*frame.HeadersFrame)
	if len(hf.Fragment) == 0 || hf.Fragment[0]&0xe0 != 0x20 {
		t.Errorf("header block starts with 0x%x, want a table size update (0x20)", hf.Fragment[0])
	}
	dec := hpack.NewDecoder(0)
	if _, err := dec.DecodeFull(hf.Fragment); err != nil {
		t.Errorf("decode with 0-byte table: %v", err)
	}
}

func TestTLSEndToEndOverTCP(t *testing.T) {
	// Full-stack: real TCP socket, TLS with ALPN, the HTTP/2 server, and
	// the probing client.
	cert, err := tlsutil.SelfSignedCert("tls.example", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	tcpL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no TCP loopback available: %v", err)
	}
	srv := server.New(server.ApacheProfile(), server.DefaultSite("tls.example"))
	tlsL := tls.NewListener(tcpL, tlsutil.ServerConfig(cert, true))
	go func() {
		_ = srv.Serve(tlsL)
	}()
	t.Cleanup(srv.Close)

	nc, err := net.Dial("tcp", tcpL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	proto, tc, err := tlsutil.NegotiateALPN(nc, "tls.example")
	if err != nil {
		t.Fatalf("ALPN: %v", err)
	}
	if proto != tlsutil.ProtoH2 {
		t.Fatalf("negotiated %q, want h2", proto)
	}
	c, err := h2conn.Dial(tc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	resp, err := c.FetchBody(h2conn.Request{Authority: "tls.example", Path: "/"}, 5*time.Second)
	if err != nil {
		t.Fatalf("FetchBody over TLS: %v", err)
	}
	if resp.Status() != "200" {
		t.Errorf("status = %q", resp.Status())
	}
}

func TestGracefulShutdownSendsGoAwayNoError(t *testing.T) {
	srv := server.New(server.H2OProfile(), server.DefaultSite("bye.example"))
	l := netsim.NewListener("shutdown")
	go func() {
		_ = srv.Serve(l)
	}()
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// An active request proves the connection is live first.
	if _, err := c.FetchBody(h2conn.Request{Authority: "bye.example", Path: "/about.html"}, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		srv.Shutdown(2 * time.Second)
		close(done)
	}()
	events, err := c.WaitFor(5*time.Second, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeGoAway {
				return true
			}
		}
		return false
	})
	if err != nil {
		t.Fatalf("no GOAWAY during shutdown: %v", err)
	}
	for _, e := range events {
		if e.Type == frame.TypeGoAway {
			if e.ErrCode != frame.ErrCodeNo {
				t.Errorf("GOAWAY code = %v, want NO_ERROR", e.ErrCode)
			}
			if len(e.DebugData) == 0 {
				t.Error("GOAWAY missing shutdown notice")
			}
		}
	}
	_ = c.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return")
	}
}

func TestShutdownForcesLingeringConnections(t *testing.T) {
	srv := server.New(server.NginxProfile(), server.DefaultSite("linger.example"))
	l := netsim.NewListener("linger")
	go func() {
		_ = srv.Serve(l)
	}()
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	// A client that never closes: Shutdown must force it after the grace
	// period and still return.
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	start := time.Now()
	srv.Shutdown(100 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Shutdown took %v", elapsed)
	}
}

// TestShutdownRacingAccept hammers the window between Accept returning a
// connection and the handler registering it: Shutdown must either sweep the
// connection or reject it, never strand it (which would hang wg.Wait
// forever) and never race wg.Add against wg.Wait.
func TestShutdownRacingAccept(t *testing.T) {
	for i := 0; i < 25; i++ {
		srv := server.New(server.NginxProfile(), server.DefaultSite("race.example"))
		l := netsim.NewListener("race")
		go func() {
			_ = srv.Serve(l)
		}()
		nc, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.Shutdown(10 * time.Millisecond)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: Shutdown stranded a connection", i)
		}
		_ = nc.Close()
	}
}

// --- window-stall accounting (h2_window_stalls_total) ---

// startInstrumented is startRaw with a metrics registry attached.
func startInstrumented(t *testing.T, p server.Profile) (*netsim.Listener, *metrics.Registry) {
	t.Helper()
	r := metrics.NewRegistry()
	srv := server.New(p, server.DefaultSite("raw.example"))
	srv.Metrics = server.NewMetrics(r)
	l := netsim.NewListener("raw-metrics")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	return l, r
}

func metricValue(t *testing.T, r *metrics.Registry, name string) int64 {
	t.Helper()
	for _, m := range r.Snapshot() {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("metric %q not registered", name)
	return 0
}

// waitMetricValue polls until the named counter reaches want: the server
// notes a stall on its own goroutine just after writing the last permitted
// DATA frame, so the client can observe the bytes a moment before the bump.
func waitMetricValue(t *testing.T, r *metrics.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := metricValue(t, r, name); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", name, metricValue(t, r, name), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// frameReader pumps frames off fr on its own goroutine so tests can apply
// timeouts (netsim conns have no read deadlines). Frames cross a goroutine
// boundary and outlive the next ReadFrame, so each is detached from the
// framer's recycled buffers with CopyPayload before it enters the channel.
func frameReader(fr *frame.Framer) <-chan frame.Frame {
	ch := make(chan frame.Frame, 64)
	go func() {
		defer close(ch)
		for {
			f, err := fr.ReadFrame()
			if err != nil {
				return
			}
			ch <- frame.CopyPayload(f)
		}
	}()
	return ch
}

// nextData returns the next DATA frame from ch, or nil if none arrives
// within timeout.
func nextData(t *testing.T, ch <-chan frame.Frame, timeout time.Duration) *frame.DataFrame {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case f, ok := <-ch:
			if !ok {
				t.Fatal("connection closed while waiting for DATA")
			}
			if df, ok := f.(*frame.DataFrame); ok {
				return df
			}
		case <-deadline:
			return nil
		}
	}
}

func writeGet(t *testing.T, fr *frame.Framer, streamID uint32, path string) {
	t.Helper()
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	block := enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "raw.example"},
		{Name: ":path", Value: path},
	})
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID: streamID, Fragment: block, EndStream: true, EndHeaders: true,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestConnWindowStallExactAccounting pins the connection-level send window to
// the RFC value: with the default 65,535-octet connection window and a stream
// window too large to bind, the server must transmit exactly 65,535 octets of
// a 65,536-octet resource before stalling — an off-by-one in either direction
// fails the byte count — then count the stall once and resume on a connection
// WINDOW_UPDATE.
func TestConnWindowStallExactAccounting(t *testing.T) {
	l, r := startInstrumented(t, server.ApacheProfile())
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = nc.Close()
	})
	if _, err := io.WriteString(nc, frame.ClientPreface); err != nil {
		t.Fatal(err)
	}
	fr := frame.NewFramer(nc, nc)
	// A huge stream window keeps the connection window the binding constraint.
	if err := fr.WriteSettings(frame.Setting{ID: frame.SettingInitialWindowSize, Val: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	writeGet(t, fr, 1, "/drain/64k")

	ch := frameReader(fr)
	stallConn := metrics.Label("h2_window_stalls_total", "scope", "conn")
	stallStream := metrics.Label("h2_window_stalls_total", "scope", "stream")
	var got int64
	for got < 65535 {
		df := nextData(t, ch, 2*time.Second)
		if df == nil {
			t.Fatalf("server stalled after %d octets, want exactly 65535 before WINDOW_UPDATE", got)
		}
		got += int64(df.FlowControlLen())
		if df.StreamEnded() {
			t.Fatalf("END_STREAM after %d octets with the connection window still charged", got)
		}
	}
	if got != 65535 {
		t.Fatalf("server sent %d octets on a 65535-octet connection window", got)
	}
	if df := nextData(t, ch, 150*time.Millisecond); df != nil {
		t.Fatalf("server sent %d octets past an exhausted connection window", df.FlowControlLen())
	}
	waitMetricValue(t, r, stallConn, 1)
	if got := metricValue(t, r, stallStream); got != 0 {
		t.Fatalf("stream stalls = %d, want 0 (the stream window never binds)", got)
	}

	if err := fr.WriteWindowUpdate(0, 1024); err != nil {
		t.Fatal(err)
	}
	df := nextData(t, ch, 2*time.Second)
	if df == nil {
		t.Fatal("no DATA after the connection WINDOW_UPDATE reopened the window")
	}
	if df.FlowControlLen() != 1 || !df.StreamEnded() {
		t.Fatalf("final frame carries %d octets (END_STREAM=%v), want the 1 remaining octet with END_STREAM",
			df.FlowControlLen(), df.StreamEnded())
	}
	if got := metricValue(t, r, stallConn); got != 1 {
		t.Fatalf("conn stalls = %d after resume, want 1 (a blocked period counts once, not per flush pass)", got)
	}
}

// TestStreamWindowStallTransitionCounting drives a stream window to zero
// twice and checks each blocked period counts exactly one stream stall while
// the connection window (never exhausted) counts none.
func TestStreamWindowStallTransitionCounting(t *testing.T) {
	l, r := startInstrumented(t, server.ApacheProfile())
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = nc.Close()
	})
	if _, err := io.WriteString(nc, frame.ClientPreface); err != nil {
		t.Fatal(err)
	}
	fr := frame.NewFramer(nc, nc)
	if err := fr.WriteSettings(frame.Setting{ID: frame.SettingInitialWindowSize, Val: 1000}); err != nil {
		t.Fatal(err)
	}
	writeGet(t, fr, 1, "/drain/16k")

	ch := frameReader(fr)
	stallConn := metrics.Label("h2_window_stalls_total", "scope", "conn")
	stallStream := metrics.Label("h2_window_stalls_total", "scope", "stream")
	readExactly := func(want int64) {
		t.Helper()
		var got int64
		for got < want {
			df := nextData(t, ch, 2*time.Second)
			if df == nil {
				t.Fatalf("server stalled after %d octets, want %d", got, want)
			}
			got += int64(df.FlowControlLen())
		}
		if got != want {
			t.Fatalf("server sent %d octets on a %d-octet stream window", got, want)
		}
	}

	readExactly(1000)
	waitMetricValue(t, r, stallStream, 1)
	if err := fr.WriteWindowUpdate(1, 500); err != nil {
		t.Fatal(err)
	}
	readExactly(500)
	waitMetricValue(t, r, stallStream, 2)
	if got := metricValue(t, r, stallConn); got != 0 {
		t.Fatalf("conn stalls = %d, want 0 (the connection window never binds)", got)
	}
}

// TestTeardownSettlesActiveStreamGauges pins the teardown accounting: a
// client that opens streams and then drops the connection mid-response must
// not leak h2_server_active_streams or h2_server_active_conns — streams that
// never reach closeStream are settled when the connection dies.
func TestTeardownSettlesActiveStreamGauges(t *testing.T) {
	l, r := startInstrumented(t, server.ApacheProfile())
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(nc, frame.ClientPreface); err != nil {
		t.Fatal(err)
	}
	fr := frame.NewFramer(nc, nc)
	// A tiny stream window keeps both responses open (stalled) when the
	// connection is abandoned.
	if err := fr.WriteSettings(frame.Setting{ID: frame.SettingInitialWindowSize, Val: 1}); err != nil {
		t.Fatal(err)
	}
	writeGet(t, fr, 1, "/drain/16k")
	writeGet(t, fr, 3, "/drain/16k")

	ch := frameReader(fr)
	if nextData(t, ch, 2*time.Second) == nil {
		t.Fatal("no DATA before teardown: streams never opened")
	}
	waitMetricValue(t, r, "h2_server_active_streams", 2)
	if err := nc.Close(); err != nil {
		t.Fatal(err)
	}
	waitMetricValue(t, r, "h2_server_active_conns", 0)
	waitMetricValue(t, r, "h2_server_active_streams", 0)
	if opened := metricValue(t, r, "h2_server_streams_opened_total"); opened != 2 {
		t.Errorf("h2_server_streams_opened_total = %d, want 2", opened)
	}
	// Both abandoned streams must still contribute duration observations.
	for _, m := range r.Snapshot() {
		if m.Name == "h2_server_stream_duration_ns" && m.Histogram != nil {
			if m.Histogram.Count != 2 {
				t.Errorf("stream duration observations = %d, want 2", m.Histogram.Count)
			}
			return
		}
	}
	t.Error("h2_server_stream_duration_ns histogram not registered")
}
