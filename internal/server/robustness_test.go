package server_test

import (
	"crypto/tls"
	"io"
	"net"
	"testing"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/hpack"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
	"h2scope/internal/tlsutil"
)

// rawConn dials the server and returns a raw framer after sending the
// preface, bypassing h2conn's conveniences.
func rawConn(t *testing.T, l *netsim.Listener) (*frame.Framer, net.Conn) {
	t.Helper()
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = nc.Close()
	})
	if _, err := io.WriteString(nc, frame.ClientPreface); err != nil {
		t.Fatal(err)
	}
	fr := frame.NewFramer(nc, nc)
	if err := fr.WriteSettings(); err != nil {
		t.Fatal(err)
	}
	return fr, nc
}

func startRaw(t *testing.T, p server.Profile) *netsim.Listener {
	t.Helper()
	srv := server.New(p, server.DefaultSite("raw.example"))
	l := netsim.NewListener("raw")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	return l
}

// waitFrameType reads until a frame of the wanted type or EOF/error.
func waitFrameType(t *testing.T, fr *frame.Framer, want frame.Type) frame.Frame {
	t.Helper()
	for i := 0; i < 64; i++ {
		f, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("waiting for %v: %v", want, err)
		}
		if f.Header().Type == want {
			return f
		}
	}
	t.Fatalf("no %v frame", want)
	return nil
}

func TestBadPrefaceClosesConnection(t *testing.T) {
	l := startRaw(t, server.NginxProfile())
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	if _, err := io.WriteString(nc, "GET / HTTP/1.1\r\nHost: x\r\n\r\n padding-to-24"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		// Server may send nothing; any read must eventually error out.
		if _, err := io.ReadAll(nc); err != nil && err != io.EOF {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestMalformedHPACKDrawsCompressionError(t *testing.T) {
	l := startRaw(t, server.ApacheProfile())
	fr, _ := rawConn(t, l)
	// An indexed-field reference to index 200 with an empty dynamic table.
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID:   1,
		Fragment:   []byte{0x80 | 0x7f, 0x79}, // index 127+121 = 248
		EndStream:  true,
		EndHeaders: true,
	}); err != nil {
		t.Fatal(err)
	}
	ga := waitFrameType(t, fr, frame.TypeGoAway).(*frame.GoAwayFrame)
	if ga.Code != frame.ErrCodeCompression {
		t.Errorf("GOAWAY code = %v, want COMPRESSION_ERROR", ga.Code)
	}
}

func TestInvalidEnablePushSettingDrawsGoAway(t *testing.T) {
	l := startRaw(t, server.H2OProfile())
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	if _, err := io.WriteString(nc, frame.ClientPreface); err != nil {
		t.Fatal(err)
	}
	fr := frame.NewFramer(nc, nc)
	if err := fr.WriteSettings(frame.Setting{ID: frame.SettingEnablePush, Val: 2}); err != nil {
		t.Fatal(err)
	}
	ga := waitFrameType(t, fr, frame.TypeGoAway).(*frame.GoAwayFrame)
	if ga.Code != frame.ErrCodeProtocol {
		t.Errorf("GOAWAY code = %v, want PROTOCOL_ERROR", ga.Code)
	}
}

func TestEvenStreamIDFromClientDrawsGoAway(t *testing.T) {
	l := startRaw(t, server.NginxProfile())
	fr, _ := rawConn(t, l)
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	block := enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "raw.example"},
		{Name: ":path", Value: "/"},
	})
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID: 2, Fragment: block, EndStream: true, EndHeaders: true,
	}); err != nil {
		t.Fatal(err)
	}
	ga := waitFrameType(t, fr, frame.TypeGoAway).(*frame.GoAwayFrame)
	if ga.Code != frame.ErrCodeProtocol {
		t.Errorf("GOAWAY code = %v, want PROTOCOL_ERROR", ga.Code)
	}
}

func TestRequestHeadersAcrossContinuation(t *testing.T) {
	l := startRaw(t, server.NginxProfile())
	fr, _ := rawConn(t, l)
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	block := enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "raw.example"},
		{Name: ":path", Value: "/about.html"},
		{Name: "user-agent", Value: "continuation-test/1.0"},
	})
	half := len(block) / 2
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID: 1, Fragment: block[:half], EndStream: true, EndHeaders: false,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteContinuation(1, true, block[half:]); err != nil {
		t.Fatal(err)
	}
	hf := waitFrameType(t, fr, frame.TypeHeaders).(*frame.HeadersFrame)
	dec := hpack.NewDecoder(hpack.DefaultDynamicTableSize)
	fields, err := dec.DecodeFull(hf.Fragment)
	if err != nil {
		t.Fatal(err)
	}
	status := ""
	for _, f := range fields {
		if f.Name == ":status" {
			status = f.Value
		}
	}
	if status != "200" {
		t.Errorf("status = %q, want 200 (fields %v)", status, fields)
	}
}

func TestInterleavedFrameDuringContinuationDrawsGoAway(t *testing.T) {
	l := startRaw(t, server.NginxProfile())
	fr, _ := rawConn(t, l)
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	block := enc.EncodeBlock([]hpack.HeaderField{{Name: ":method", Value: "GET"}})
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID: 1, Fragment: block, EndStream: true, EndHeaders: false,
	}); err != nil {
		t.Fatal(err)
	}
	// A PING in the middle of a header block is a connection error
	// (RFC 7540 section 6.10).
	if err := fr.WritePing(false, [8]byte{}); err != nil {
		t.Fatal(err)
	}
	ga := waitFrameType(t, fr, frame.TypeGoAway).(*frame.GoAwayFrame)
	if ga.Code != frame.ErrCodeProtocol {
		t.Errorf("GOAWAY code = %v, want PROTOCOL_ERROR", ga.Code)
	}
}

func TestClientDataOverflowingConnWindowDrawsFlowControlError(t *testing.T) {
	l := startRaw(t, server.ApacheProfile())
	fr, _ := rawConn(t, l)
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	block := enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":method", Value: "POST"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "raw.example"},
		{Name: ":path", Value: "/"},
	})
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID: 1, Fragment: block, EndHeaders: true,
	}); err != nil {
		t.Fatal(err)
	}
	// Flood past the server's 65,535-octet connection receive window.
	chunk := make([]byte, 16384)
	var sawGoAway bool
	for i := 0; i < 8 && !sawGoAway; i++ {
		if err := fr.WriteData(1, false, chunk); err != nil {
			break // server likely tore the connection down already
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		f, err := fr.ReadFrame()
		if err != nil {
			break
		}
		if ga, ok := f.(*frame.GoAwayFrame); ok {
			if ga.Code != frame.ErrCodeFlowControl {
				t.Errorf("GOAWAY code = %v, want FLOW_CONTROL_ERROR", ga.Code)
			}
			sawGoAway = true
			break
		}
	}
	if !sawGoAway {
		t.Fatal("no GOAWAY after flooding the connection window")
	}
}

func TestAbruptClientCloseDoesNotWedgeServer(t *testing.T) {
	srv := server.New(server.H2OProfile(), server.DefaultSite("raw.example"))
	l := netsim.NewListener("abrupt")
	go func() {
		_ = srv.Serve(l)
	}()
	// Open and abandon a handful of mid-request connections.
	for i := 0; i < 5; i++ {
		nc, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.WriteString(nc, frame.ClientPreface)
		_ = nc.Close()
	}
	// The server must still accept and serve new connections.
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.FetchBody(h2conn.Request{Authority: "raw.example", Path: "/"}, 5*time.Second)
	if err != nil {
		t.Fatalf("FetchBody after abrupt closes: %v", err)
	}
	if resp.Status() != "200" {
		t.Errorf("status = %q", resp.Status())
	}
	_ = c.Close()
	srv.Close() // must return promptly with no wedged goroutines
}

func TestPingFloodStaysResponsive(t *testing.T) {
	l := startRaw(t, server.NginxProfile())
	fr, _ := rawConn(t, l)
	const pings = 500
	go func() {
		for i := 0; i < pings; i++ {
			var data [8]byte
			data[0], data[1] = byte(i>>8), byte(i)
			if err := fr.WritePing(false, data); err != nil {
				return
			}
		}
	}()
	acks := 0
	deadline := time.Now().Add(5 * time.Second)
	for acks < pings && time.Now().Before(deadline) {
		f, err := fr.ReadFrame()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if pf, ok := f.(*frame.PingFrame); ok && pf.IsAck() {
			acks++
		}
	}
	if acks != pings {
		t.Fatalf("acks = %d, want %d", acks, pings)
	}
}

func TestHeaderTableSizeShrinkEmitsTableSizeUpdate(t *testing.T) {
	// A client shrinking SETTINGS_HEADER_TABLE_SIZE must see the server's
	// next header block start with a dynamic table size update.
	l := startRaw(t, server.H2OProfile())
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = nc.Close()
	}()
	if _, err := io.WriteString(nc, frame.ClientPreface); err != nil {
		t.Fatal(err)
	}
	fr := frame.NewFramer(nc, nc)
	if err := fr.WriteSettings(frame.Setting{ID: frame.SettingHeaderTableSize, Val: 0}); err != nil {
		t.Fatal(err)
	}
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	block := enc.EncodeBlock([]hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "raw.example"},
		{Name: ":path", Value: "/about.html"},
	})
	if err := fr.WriteHeaders(frame.HeadersParams{
		StreamID: 1, Fragment: block, EndStream: true, EndHeaders: true,
	}); err != nil {
		t.Fatal(err)
	}
	hf := waitFrameType(t, fr, frame.TypeHeaders).(*frame.HeadersFrame)
	if len(hf.Fragment) == 0 || hf.Fragment[0]&0xe0 != 0x20 {
		t.Errorf("header block starts with 0x%x, want a table size update (0x20)", hf.Fragment[0])
	}
	dec := hpack.NewDecoder(0)
	if _, err := dec.DecodeFull(hf.Fragment); err != nil {
		t.Errorf("decode with 0-byte table: %v", err)
	}
}

func TestTLSEndToEndOverTCP(t *testing.T) {
	// Full-stack: real TCP socket, TLS with ALPN, the HTTP/2 server, and
	// the probing client.
	cert, err := tlsutil.SelfSignedCert("tls.example", "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	tcpL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no TCP loopback available: %v", err)
	}
	srv := server.New(server.ApacheProfile(), server.DefaultSite("tls.example"))
	tlsL := tls.NewListener(tcpL, tlsutil.ServerConfig(cert, true))
	go func() {
		_ = srv.Serve(tlsL)
	}()
	t.Cleanup(srv.Close)

	nc, err := net.Dial("tcp", tcpL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	proto, tc, err := tlsutil.NegotiateALPN(nc, "tls.example")
	if err != nil {
		t.Fatalf("ALPN: %v", err)
	}
	if proto != tlsutil.ProtoH2 {
		t.Fatalf("negotiated %q, want h2", proto)
	}
	c, err := h2conn.Dial(tc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	resp, err := c.FetchBody(h2conn.Request{Authority: "tls.example", Path: "/"}, 5*time.Second)
	if err != nil {
		t.Fatalf("FetchBody over TLS: %v", err)
	}
	if resp.Status() != "200" {
		t.Errorf("status = %q", resp.Status())
	}
}

func TestGracefulShutdownSendsGoAwayNoError(t *testing.T) {
	srv := server.New(server.H2OProfile(), server.DefaultSite("bye.example"))
	l := netsim.NewListener("shutdown")
	go func() {
		_ = srv.Serve(l)
	}()
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// An active request proves the connection is live first.
	if _, err := c.FetchBody(h2conn.Request{Authority: "bye.example", Path: "/about.html"}, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		srv.Shutdown(2 * time.Second)
		close(done)
	}()
	events, err := c.WaitFor(5*time.Second, func(evs []h2conn.Event) bool {
		for _, e := range evs {
			if e.Type == frame.TypeGoAway {
				return true
			}
		}
		return false
	})
	if err != nil {
		t.Fatalf("no GOAWAY during shutdown: %v", err)
	}
	for _, e := range events {
		if e.Type == frame.TypeGoAway {
			if e.ErrCode != frame.ErrCodeNo {
				t.Errorf("GOAWAY code = %v, want NO_ERROR", e.ErrCode)
			}
			if len(e.DebugData) == 0 {
				t.Error("GOAWAY missing shutdown notice")
			}
		}
	}
	_ = c.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return")
	}
}

func TestShutdownForcesLingeringConnections(t *testing.T) {
	srv := server.New(server.NginxProfile(), server.DefaultSite("linger.example"))
	l := netsim.NewListener("linger")
	go func() {
		_ = srv.Serve(l)
	}()
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	// A client that never closes: Shutdown must force it after the grace
	// period and still return.
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	start := time.Now()
	srv.Shutdown(100 * time.Millisecond)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Shutdown took %v", elapsed)
	}
}

// TestShutdownRacingAccept hammers the window between Accept returning a
// connection and the handler registering it: Shutdown must either sweep the
// connection or reject it, never strand it (which would hang wg.Wait
// forever) and never race wg.Add against wg.Wait.
func TestShutdownRacingAccept(t *testing.T) {
	for i := 0; i < 25; i++ {
		srv := server.New(server.NginxProfile(), server.DefaultSite("race.example"))
		l := netsim.NewListener("race")
		go func() {
			_ = srv.Serve(l)
		}()
		nc, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.Shutdown(10 * time.Millisecond)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("iteration %d: Shutdown stranded a connection", i)
		}
		_ = nc.Close()
	}
}
