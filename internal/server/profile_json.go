package server

import (
	"encoding/json"
	"fmt"
	"strconv"

	"h2scope/internal/hpack"
)

// JSON (de)serialization for Profile enums, so custom behavior profiles can
// be written as human-editable files (cmd/h2server -profile-file) and scan
// records stay readable. Enums serialize as their String() names.

// MarshalJSON encodes the reaction as its Table III name.
func (r Reaction) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(r.String())), nil
}

// UnmarshalJSON decodes a Table III reaction name.
func (r *Reaction) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("server: reaction %s: %w", data, err)
	}
	for _, cand := range []Reaction{ReactIgnore, ReactRSTStream, ReactGoAway} {
		if cand.String() == s {
			*r = cand
			return nil
		}
	}
	return fmt.Errorf("server: unknown reaction %q", s)
}

// MarshalJSON encodes the scheduling mode by name.
func (m SchedulingMode) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(m.String())), nil
}

// UnmarshalJSON decodes a scheduling-mode name.
func (m *SchedulingMode) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("server: scheduling mode %s: %w", data, err)
	}
	modes := []SchedulingMode{
		SchedRoundRobin, SchedPriority, SchedPriorityLastOnly,
		SchedPriorityFirstOnly, SchedSequential,
	}
	for _, cand := range modes {
		if cand.String() == s {
			*m = cand
			return nil
		}
	}
	return fmt.Errorf("server: unknown scheduling mode %q", s)
}

// tinyWindowNames maps behaviors to stable JSON names.
var tinyWindowNames = map[TinyWindowBehavior]string{
	TinyWindowComply:   "comply",
	TinyWindowZeroData: "zero-data",
	TinyWindowSilent:   "silent",
}

// MarshalJSON encodes the tiny-window behavior by name.
func (b TinyWindowBehavior) MarshalJSON() ([]byte, error) {
	name, ok := tinyWindowNames[b]
	if !ok {
		return nil, fmt.Errorf("server: unknown tiny-window behavior %d", b)
	}
	return []byte(strconv.Quote(name)), nil
}

// UnmarshalJSON decodes a tiny-window behavior name.
func (b *TinyWindowBehavior) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("server: tiny-window behavior %s: %w", data, err)
	}
	for cand, name := range tinyWindowNames {
		if name == s {
			*b = cand
			return nil
		}
	}
	return fmt.Errorf("server: unknown tiny-window behavior %q", s)
}

// profileJSON mirrors Profile with the HPACK policy flattened to a name;
// hpack.IndexingPolicy lives in another package, so the alias keeps its
// wire form here.
type profileJSON struct {
	Profile
	HPACKPolicy string `json:"HPACKPolicy"`
}

var hpackPolicyNames = map[hpack.IndexingPolicy]string{
	hpack.PolicyIndexAll:        "index-all",
	hpack.PolicyNoDynamicInsert: "no-dynamic-insert",
	hpack.PolicyIndexPartial:    "partial",
}

// MarshalProfile encodes a profile as indented JSON.
func MarshalProfile(p Profile) ([]byte, error) {
	name, ok := hpackPolicyNames[p.HPACKPolicy]
	if !ok {
		return nil, fmt.Errorf("server: unknown HPACK policy %d", p.HPACKPolicy)
	}
	out := profileJSON{Profile: p, HPACKPolicy: name}
	out.Profile.HPACKPolicy = 0 // superseded by the named field
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalProfile decodes a profile written by MarshalProfile (or by hand).
func UnmarshalProfile(data []byte) (Profile, error) {
	var in profileJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return Profile{}, fmt.Errorf("server: decoding profile: %w", err)
	}
	p := in.Profile
	found := false
	for policy, name := range hpackPolicyNames {
		if name == in.HPACKPolicy {
			p.HPACKPolicy = policy
			found = true
		}
	}
	if !found {
		return Profile{}, fmt.Errorf("server: unknown HPACK policy %q", in.HPACKPolicy)
	}
	return p, nil
}
