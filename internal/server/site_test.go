package server_test

import (
	"strings"
	"testing"

	"h2scope/internal/hpack"
	"h2scope/internal/server"
)

func TestSiteBuilders(t *testing.T) {
	s := server.NewSite("build.example")
	s.AddPage("/p", "<html>p</html>")
	s.AddObject("/o", 1234)
	s.Add(&server.Resource{
		Path:        "/custom",
		ContentType: "application/json",
		Body:        []byte(`{}`),
		ExtraHeaders: []hpack.HeaderField{
			{Name: "cache-control", Value: "no-store"},
		},
	})
	if r, ok := s.Lookup("/o"); !ok || len(r.Body) != 1234 {
		t.Errorf("Lookup(/o) = %+v, %v", r, ok)
	}
	if _, ok := s.Lookup("/missing"); ok {
		t.Error("Lookup(/missing) succeeded")
	}
	paths := s.Paths()
	if len(paths) != 3 || paths[0] != "/custom" {
		t.Errorf("Paths() = %v", paths)
	}
}

func TestSetPushReplacesManifest(t *testing.T) {
	s := server.DefaultSite("push.example")
	s.SetPush("/", "/about.html")
	r, ok := s.Lookup("/")
	if !ok || len(r.Push) != 1 || r.Push[0] != "/about.html" {
		t.Errorf("push manifest = %v", r.Push)
	}
	s.SetPush("/") // clear
	if r, _ := s.Lookup("/"); len(r.Push) != 0 {
		t.Errorf("cleared manifest = %v", r.Push)
	}
}

func TestSetPushUnknownPathPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetPush on unknown path did not panic")
		}
	}()
	server.NewSite("x").SetPush("/nope")
}

func TestDefaultSiteLayoutMatchesProbeConfig(t *testing.T) {
	// The probe config's default paths must exist in the default site,
	// including a drain object of at least 65,535 bytes.
	s := server.DefaultSite("layout.example")
	for _, path := range []string{
		"/", "/about.html", "/drain/64k",
		"/large/1", "/large/2", "/large/3", "/large/4", "/large/5", "/large/6",
		"/static/app.js", "/static/style.css",
	} {
		if _, ok := s.Lookup(path); !ok {
			t.Errorf("default site missing %s", path)
		}
	}
	drain, _ := s.Lookup("/drain/64k")
	if len(drain.Body) < 65_535 {
		t.Errorf("drain object is %d bytes, want >= 65535", len(drain.Body))
	}
	index, _ := s.Lookup("/")
	if !strings.Contains(string(index.Body), "layout.example") {
		t.Error("index page missing domain")
	}
	if len(index.Push) == 0 {
		t.Error("default site front page has no push manifest")
	}
}

func TestProfileStrings(t *testing.T) {
	for r, want := range map[server.Reaction]string{
		server.ReactIgnore:    "ignore",
		server.ReactRSTStream: "RST_STREAM",
		server.ReactGoAway:    "GOAWAY",
	} {
		if got := r.String(); got != want {
			t.Errorf("Reaction %d = %q, want %q", r, got, want)
		}
	}
	for m, want := range map[server.SchedulingMode]string{
		server.SchedRoundRobin:        "round-robin",
		server.SchedPriority:          "priority",
		server.SchedPriorityLastOnly:  "priority-last-only",
		server.SchedPriorityFirstOnly: "priority-first-only",
		server.SchedSequential:        "sequential",
	} {
		if got := m.String(); got != want {
			t.Errorf("SchedulingMode %d = %q, want %q", m, got, want)
		}
	}
}

func TestTestbedProfilesOrderAndFamilies(t *testing.T) {
	profiles := server.TestbedProfiles()
	want := []string{"nginx", "litespeed", "h2o", "nghttpd", "tengine", "apache"}
	if len(profiles) != len(want) {
		t.Fatalf("profiles = %d", len(profiles))
	}
	for i, p := range profiles {
		if p.Family != want[i] {
			t.Errorf("profile %d family = %q, want %q", i, p.Family, want[i])
		}
		if p.Name == "" {
			t.Errorf("profile %d has empty server name", i)
		}
	}
}
