package server

import (
	"fmt"
	"strconv"

	"h2scope/internal/hpack"
)

// This file is the no-map/no-string-churn dispatch table behind the server's
// zero-alloc request path. At construction time every site resource is
// compiled into a routeEntry carrying its fully-built response header list
// (status, etag, content-length — everything responseHeaders would otherwise
// format per request) and its resolved push manifest. The hot path then
// binary-searches the sorted entry slice by :path and aliases the
// precomputed slices into the stream, allocating nothing.

// notFoundBody is the shared 404 payload.
var notFoundBody = []byte("<html><body><h1>404 Not Found</h1></body></html>")

// routeEntry is one compiled route: the resource plus its prebuilt response
// header list and resolved push targets.
type routeEntry struct {
	path string
	res  *Resource
	// fields is the complete response header list, built once. Hot-path
	// streams alias it and must never mutate it.
	fields []hpack.HeaderField
	// pushes indexes the push-manifest targets into routeTable.entries,
	// resolved at build time so the hot path does no site lookups.
	pushes []pushRoute
}

// pushRoute is one resolved push-manifest target.
type pushRoute struct {
	// reqFields is the synthetic request header list carried by the
	// PUSH_PROMISE frame.
	reqFields []hpack.HeaderField
	// target indexes the pushed resource's entry in routeTable.entries.
	target int
}

// routeTable is the compiled dispatch table for one (profile, site) pair.
type routeTable struct {
	// entries is sorted ascending by path for binary search.
	entries []routeEntry
	// notFound is the prebuilt 404 response.
	notFound routeEntry
}

// buildRoutes compiles the site's document tree against the profile's
// response identity. Resources added to the site afterwards fall back to
// the dynamic (allocating) respond path; Site documents itself as immutable
// once serving starts, so in practice the table is complete.
func buildRoutes(p *Profile, site *Site) *routeTable {
	paths := site.Paths()
	rt := &routeTable{entries: make([]routeEntry, 0, len(paths))}
	for _, path := range paths {
		res, _ := site.Lookup(path)
		rt.entries = append(rt.entries, routeEntry{
			path:   path,
			res:    res,
			fields: buildResponseFields(p.Name, "200", res.ContentType, len(res.Body), res.ExtraHeaders),
		})
	}
	// Resolve push manifests to entry indexes now that the slice is final.
	for i := range rt.entries {
		e := &rt.entries[i]
		for _, pushPath := range e.res.Push {
			j := rt.index(pushPath)
			if j < 0 {
				continue
			}
			e.pushes = append(e.pushes, pushRoute{
				reqFields: []hpack.HeaderField{
					{Name: ":method", Value: "GET"},
					{Name: ":scheme", Value: "https"},
					{Name: ":authority", Value: site.Domain},
					{Name: ":path", Value: pushPath},
				},
				target: j,
			})
		}
	}
	rt.notFound = routeEntry{
		res:    &Resource{ContentType: "text/html; charset=utf-8", Body: notFoundBody},
		fields: buildResponseFields(p.Name, "404", "text/html; charset=utf-8", len(notFoundBody), nil),
	}
	return rt
}

// index returns the entry index for path, or -1.
func (rt *routeTable) index(path string) int {
	lo, hi := 0, len(rt.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rt.entries[mid].path < path {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(rt.entries) && rt.entries[lo].path == path {
		return lo
	}
	return -1
}

// lookup binary-searches the table by request path.
//
//h2:hotpath — the per-request route dispatch.
func (rt *routeTable) lookup(path string) *routeEntry {
	if i := rt.index(path); i >= 0 {
		return &rt.entries[i]
	}
	return nil
}

// buildResponseFields constructs a realistic response header list. Values
// are deterministic so repeated identical requests produce byte-identical
// header blocks — the precondition of the paper's HPACK ratio experiment.
// It is the build-time twin of (*conn).responseHeaders and must stay
// byte-identical with it.
func buildResponseFields(serverName, status, contentType string, bodyLen int, extra []hpack.HeaderField) []hpack.HeaderField {
	fields := []hpack.HeaderField{
		{Name: ":status", Value: status},
		{Name: "server", Value: serverName},
		{Name: "date", Value: fixedDate},
		{Name: "content-type", Value: contentType},
		{Name: "content-length", Value: strconv.Itoa(bodyLen)},
		{Name: "last-modified", Value: fixedDate},
		{Name: "etag", Value: fmt.Sprintf("%q", strconv.FormatInt(int64(bodyLen)*2654435761, 36))},
		{Name: "accept-ranges", Value: "bytes"},
		{Name: "vary", Value: "accept-encoding"},
	}
	return append(fields, extra...)
}
