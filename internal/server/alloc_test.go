package server

import (
	"bytes"
	"net"
	"testing"
	"time"

	"h2scope/internal/frame"
	"h2scope/internal/hpack"
	"h2scope/internal/metrics"
)

// This file is the dynamic half of the server's zero-alloc gate: the static
// half is the hotalloc analyzer over the //h2:hotpath roots (dispatchRequest,
// flushEgress, the route-table lookup). TestServerHotPathAllocs drives a full
// request/response round — HEADERS in, route dispatch, HEADERS+DATA out,
// stream close and recycle — through the real serve-step machinery and pins
// it at 0 allocs/op steady state.

// replayConn is a scripted net.Conn: Read serves the queued chunks one call
// at a time (so the serve loop's buffered reader sees exactly one frame per
// step), Write counts and discards.
type replayConn struct {
	pending      [][]byte
	head         int
	writtenBytes int
	writeCalls   int
}

func (r *replayConn) Read(p []byte) (int, error) {
	if r.head >= len(r.pending) {
		return 0, net.ErrClosed
	}
	chunk := r.pending[r.head]
	n := copy(p, chunk)
	if n == len(chunk) {
		r.head++
		if r.head == len(r.pending) {
			// Reset in place so the backing array (and its capacity) is
			// reused: the steady-state alloc gate must not be tripped by
			// the scripted conn's own queue growing.
			r.pending = r.pending[:0]
			r.head = 0
		}
	} else {
		r.pending[r.head] = chunk[n:]
	}
	return n, nil
}

func (r *replayConn) Write(p []byte) (int, error) {
	r.writtenBytes += len(p)
	r.writeCalls++
	return len(p), nil
}

func (r *replayConn) push(chunks ...[]byte) { r.pending = append(r.pending, chunks...) }

func (r *replayConn) Close() error                       { return nil }
func (r *replayConn) LocalAddr() net.Addr                { return replayAddr{} }
func (r *replayConn) RemoteAddr() net.Addr               { return replayAddr{} }
func (r *replayConn) SetDeadline(t time.Time) error      { return nil }
func (r *replayConn) SetReadDeadline(t time.Time) error  { return nil }
func (r *replayConn) SetWriteDeadline(t time.Time) error { return nil }

type replayAddr struct{}

func (replayAddr) Network() string { return "replay" }
func (replayAddr) String() string  { return "replay" }

// clientFrames builds raw client-side frame bytes with an independent framer.
func clientFrames(t *testing.T, build func(fr *frame.Framer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	fr := frame.NewFramer(&buf, nil)
	build(fr)
	if err := fr.Flush(); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), buf.Bytes()...)
}

// encodeRequest builds one HEADERS frame (END_STREAM|END_HEADERS) for a GET.
// The encoder never touches the dynamic table, so every replayed block is
// decodable independently.
func encodeRequest(t *testing.T, enc *hpack.Encoder, streamID uint32, path string) []byte {
	t.Helper()
	fields := []hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "testbed.example"},
		{Name: ":path", Value: path},
		{Name: "user-agent", Value: "alloc-gate/1.0"},
	}
	block := enc.AppendBlock(nil, fields)
	return clientFrames(t, func(fr *frame.Framer) {
		if err := fr.WriteHeaders(frame.HeadersParams{
			StreamID:   streamID,
			Fragment:   block,
			EndStream:  true,
			EndHeaders: true,
		}); err != nil {
			t.Fatal(err)
		}
	})
}

// stepOK drives one serve-loop step and fails the test on error or stop.
func stepOK(t *testing.T, c *conn) {
	t.Helper()
	stop, err := c.step()
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	if stop {
		t.Fatal("step: unexpected stop")
	}
}

// TestServerHotPathAllocs pins the full server request path at 0 allocs/op:
// HEADERS dispatch through the compiled route table, response HEADERS+DATA
// egress through the priority scheduler, stream close into the pool, plus
// the WINDOW_UPDATE replenishing the connection window. Instrumented
// (Metrics attached) to prove the gauges and histograms are clean too.
func TestServerHotPathAllocs(t *testing.T) {
	site := DefaultSite("testbed.example")
	srv := New(NghttpdProfile(), site)
	srv.Metrics = NewMetrics(metrics.NewRegistry())

	nc := &replayConn{}
	c := newConn(srv, nc)
	c.fr.SetMetrics(srv.Metrics.framer)
	c.fpInit(nc)
	c.dec.SetMaxHeaderListSize(defaultMaxHeaderListBytes)

	// Handshake: preface + client SETTINGS, server SETTINGS + ack.
	nc.push([]byte(frame.ClientPreface))
	if err := c.readPreface(); err != nil {
		t.Fatal(err)
	}
	if err := c.fr.WriteSettings(srv.profile.settings()...); err != nil {
		t.Fatal(err)
	}
	if err := c.fr.Flush(); err != nil {
		t.Fatal(err)
	}
	nc.push(clientFrames(t, func(fr *frame.Framer) {
		if err := fr.WriteSettings(); err != nil {
			t.Fatal(err)
		}
	}))
	stepOK(t, c)

	const path = "/about.html"
	res, ok := site.Lookup(path)
	if !ok {
		t.Fatalf("missing %s", path)
	}
	bodyLen := uint32(len(res.Body))

	enc := hpack.NewEncoder(hpack.PolicyNoDynamicInsert)
	// Pregenerate all request frames: client-side encoding must not count
	// against the server's alloc budget. AllocsPerRun runs once extra as
	// warm-up; add explicit warm-up rounds for the stream pool, the decode
	// scratch, and the HPACK interning tables on top.
	const warmup, runs = 32, 400
	streamID := uint32(1)
	var requests [][]byte
	var updates [][]byte
	for i := 0; i < warmup+runs+1; i++ {
		requests = append(requests, encodeRequest(t, enc, streamID, path))
		updates = append(updates, clientFrames(t, func(fr *frame.Framer) {
			if err := fr.WriteWindowUpdate(0, bodyLen); err != nil {
				t.Fatal(err)
			}
		}))
		streamID += 2
	}

	i := 0
	round := func() {
		nc.push(requests[i])
		stepOK(t, c)
		nc.push(updates[i])
		stepOK(t, c)
		i++
	}
	for w := 0; w < warmup; w++ {
		round()
	}
	if len(c.streams) != 0 {
		t.Fatalf("streams not drained after warmup: %d open", len(c.streams))
	}
	written := nc.writtenBytes
	if written == 0 {
		t.Fatal("no response bytes written during warmup")
	}

	allocs := testing.AllocsPerRun(runs, round)
	if allocs != 0 {
		t.Fatalf("request/response round allocates %.2f times per op, want 0", allocs)
	}
	if nc.writtenBytes <= written {
		t.Fatal("no response bytes written during measured runs")
	}
}

// TestServeStepCoalescesBatchedInput checks the flush-deferral read path: a
// burst of pipelined requests arriving in one read is answered with one
// egress pass and one wire write, not one write per request.
func TestServeStepCoalescesBatchedInput(t *testing.T) {
	site := DefaultSite("testbed.example")
	srv := New(NghttpdProfile(), site)

	nc := &replayConn{}
	c := newConn(srv, nc)
	c.fpInit(nc)

	nc.push([]byte(frame.ClientPreface))
	if err := c.readPreface(); err != nil {
		t.Fatal(err)
	}
	if err := c.fr.WriteSettings(srv.profile.settings()...); err != nil {
		t.Fatal(err)
	}
	if err := c.fr.Flush(); err != nil {
		t.Fatal(err)
	}
	nc.push(clientFrames(t, func(fr *frame.Framer) {
		if err := fr.WriteSettings(); err != nil {
			t.Fatal(err)
		}
	}))
	stepOK(t, c)

	// Three pipelined GETs delivered as ONE chunk: the buffered reader sees
	// them together, so steps 1 and 2 must defer egress and the final step
	// flushes everything in a single write.
	enc := hpack.NewEncoder(hpack.PolicyNoDynamicInsert)
	var burst []byte
	for _, id := range []uint32{1, 3, 5} {
		burst = append(burst, encodeRequest(t, enc, id, "/about.html")...)
	}
	nc.push(burst)

	before := nc.writeCalls
	stepOK(t, c)
	stepOK(t, c)
	if nc.writeCalls != before {
		t.Fatalf("egress flushed while input frames were still buffered (%d writes)", nc.writeCalls-before)
	}
	stepOK(t, c)
	if got := nc.writeCalls - before; got != 1 {
		t.Fatalf("batched requests produced %d wire writes, want 1", got)
	}
	if len(c.streams) != 0 {
		t.Fatalf("streams not drained: %d open", len(c.streams))
	}
}
