package server_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"h2scope/internal/h2conn"
	"h2scope/internal/netsim"
	"h2scope/internal/server"
)

// countingConn wraps a net.Conn and counts Write calls — on a real socket
// each is one syscall, so this measures what response coalescing saves.
type countingConn struct {
	net.Conn
	mu     sync.Mutex
	writes int
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *countingConn) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// TestServerResponseBurstCoalesced fetches a multi-frame object and asserts
// the server needed strictly fewer writes than it sent frames: the response
// HEADERS and the DATA frames that fit the flow-control windows leave in
// coalesced bursts, not one write per frame.
func TestServerResponseBurstCoalesced(t *testing.T) {
	srv := server.New(server.NghttpdProfile(), server.DefaultSite("coalesce.example"))
	clientNC, serverNC := netsim.Pipe()
	cc := &countingConn{Conn: serverNC}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.ServeConn(cc)
	}()

	conn, err := h2conn.Dial(clientNC, h2conn.DefaultOptions())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	// /static/hero.jpg is 48 KiB: a HEADERS frame plus three 16 KiB DATA
	// frames, all inside the default 64 KiB connection window.
	resp, err := conn.FetchBody(h2conn.Request{Authority: "coalesce.example", Path: "/static/hero.jpg"}, 5*time.Second)
	if err != nil {
		t.Fatalf("FetchBody: %v", err)
	}
	if len(resp.Body) != 48*1024 {
		t.Fatalf("body = %d bytes, want %d", len(resp.Body), 48*1024)
	}
	writes := cc.count()
	if err := conn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit after client close")
	}

	// Frames sent by the time the body completed: server SETTINGS (+
	// window boost), SETTINGS ack, response HEADERS, 3 DATA — at least 6.
	// Coalescing must beat one-write-per-frame; the response burst alone
	// (HEADERS + 3 DATA in one serve-loop pass) guarantees it.
	const minFrames = 6
	if writes >= minFrames {
		t.Errorf("server used %d writes for >= %d frames; response burst not coalesced", writes, minFrames)
	}
	t.Logf("server wrote >= %d frames in %d writes", minFrames, writes)
}
