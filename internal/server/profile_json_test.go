package server_test

import (
	"strings"
	"testing"

	"h2scope/internal/hpack"
	"h2scope/internal/server"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	for _, p := range server.TestbedProfiles() {
		p := p
		t.Run(p.Family, func(t *testing.T) {
			data, err := server.MarshalProfile(p)
			if err != nil {
				t.Fatalf("MarshalProfile: %v", err)
			}
			back, err := server.UnmarshalProfile(data)
			if err != nil {
				t.Fatalf("UnmarshalProfile: %v", err)
			}
			if back != p {
				t.Errorf("round trip changed profile:\n got %+v\nwant %+v", back, p)
			}
		})
	}
}

func TestProfileJSONHumanReadableEnums(t *testing.T) {
	data, err := server.MarshalProfile(server.NginxProfile())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"ignore"`, `"round-robin"`, `"comply"`, `"no-dynamic-insert"`, `"RST_STREAM"`} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized profile missing %s:\n%s", want, s)
		}
	}
}

func TestProfileJSONPartialPolicy(t *testing.T) {
	p := server.H2OProfile()
	p.HPACKPolicy = hpack.PolicyIndexPartial
	p.HPACKPartialFraction = 0.4
	p.HPACKPartialSalt = 7
	data, err := server.MarshalProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := server.UnmarshalProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.HPACKPolicy != hpack.PolicyIndexPartial || back.HPACKPartialFraction != 0.4 || back.HPACKPartialSalt != 7 {
		t.Errorf("partial policy lost: %+v", back)
	}
}

func TestProfileJSONRejectsGarbage(t *testing.T) {
	if _, err := server.UnmarshalProfile([]byte(`{"HPACKPolicy":"nope"}`)); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := server.UnmarshalProfile([]byte(`{"Scheduling":"warp-speed"}`)); err == nil {
		t.Error("unknown scheduling mode accepted")
	}
	if _, err := server.UnmarshalProfile([]byte(`not json`)); err == nil {
		t.Error("non-JSON accepted")
	}
}
