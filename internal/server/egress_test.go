package server

import (
	"bytes"
	"io"
	"testing"

	"h2scope/internal/frame"
	"h2scope/internal/hpack"
)

// This file proves the egress scheduler's frame order follows the RFC 7540
// section 5.3 priority tree: weighted siblings interleave by smooth
// weighted round-robin in exact hand-computed sequences, dependent streams
// wait for their ancestors, and equal weights degrade to round-robin. The
// server writes into a capturing conn and the test re-parses the wire
// bytes, so what is asserted is the real framed output, not scheduler
// internals.

// captureConn is a replayConn that also records everything written, so the
// emitted frame sequence can be re-parsed and asserted.
type captureConn struct {
	replayConn
	wire bytes.Buffer
}

func (c *captureConn) Write(p []byte) (int, error) {
	c.wire.Write(p)
	return c.replayConn.Write(p)
}

// wireEvent is one parsed frame of server output.
type wireEvent struct {
	typ       frame.Type
	streamID  uint32
	dataLen   int
	endStream bool
}

// parseWire re-reads the captured server output as frames.
func parseWire(t *testing.T, wire []byte) []wireEvent {
	t.Helper()
	fr := frame.NewFramer(io.Discard, bytes.NewReader(wire))
	var evs []wireEvent
	for {
		f, err := fr.ReadFrame()
		if err == io.EOF {
			return evs
		}
		if err != nil {
			t.Fatalf("parse server output: %v", err)
		}
		ev := wireEvent{typ: f.Header().Type, streamID: f.Header().StreamID}
		switch f := f.(type) {
		case *frame.DataFrame:
			ev.dataLen = len(f.Data)
			ev.endStream = f.StreamEnded()
		case *frame.HeadersFrame:
			ev.endStream = f.StreamEnded()
		}
		evs = append(evs, ev)
	}
}

// encodePriorityRequest builds one GET HEADERS frame carrying explicit
// prioritization (zero prio means no FlagPriority: tree default weight).
func encodePriorityRequest(t *testing.T, enc *hpack.Encoder, streamID uint32, path string, prio frame.PriorityParam) []byte {
	t.Helper()
	fields := []hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "testbed.example"},
		{Name: ":path", Value: path},
	}
	block := enc.AppendBlock(nil, fields)
	return clientFrames(t, func(fr *frame.Framer) {
		if err := fr.WriteHeaders(frame.HeadersParams{
			StreamID:   streamID,
			Fragment:   block,
			EndStream:  true,
			EndHeaders: true,
			Priority:   prio,
		}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestEgressOrderFollowsPriorityTree drives a SchedPriority server with
// bursts of prioritized requests for /large/1 (96 KiB = exactly 6 DATA
// quanta at the default 16 KiB max frame size) and asserts the exact DATA
// frame interleaving the smooth-WRR walk over the dependency tree demands.
func TestEgressOrderFollowsPriorityTree(t *testing.T) {
	const path = "/large/1"
	const quanta = 6 // 96 KiB / 16 KiB

	type req struct {
		id   uint32
		prio frame.PriorityParam
	}
	cases := []struct {
		name string
		reqs []req
		// want is the expected stream ID per DATA frame, in wire order.
		want []uint32
	}{
		{
			// Effective weights 4:2, total 6. Credits replay as the
			// period [1,3,1] until stream 1 exhausts its 6 quanta at
			// pick 9, then stream 3 drains alone.
			name: "weighted siblings interleave 2:1",
			reqs: []req{
				{id: 1, prio: frame.PriorityParam{StreamDep: 0, Weight: 3}},
				{id: 3, prio: frame.PriorityParam{StreamDep: 0, Weight: 1}},
			},
			want: []uint32{1, 3, 1, 1, 3, 1, 1, 3, 1, 3, 3, 3},
		},
		{
			// Stream 3 depends on stream 1: per section 5.3.1 it gets
			// nothing while its ancestor is ready, so the parent's whole
			// body precedes the child's first byte.
			name: "dependent child waits for parent",
			reqs: []req{
				{id: 1, prio: frame.PriorityParam{}},
				{id: 3, prio: frame.PriorityParam{StreamDep: 1, Weight: 15}},
			},
			want: []uint32{1, 1, 1, 1, 1, 1, 3, 3, 3, 3, 3, 3},
		},
		{
			// Equal default weights: smooth WRR degrades to strict
			// round-robin with ties broken toward the lowest stream ID.
			name: "equal weights round-robin",
			reqs: []req{
				{id: 1, prio: frame.PriorityParam{}},
				{id: 3, prio: frame.PriorityParam{}},
				{id: 5, prio: frame.PriorityParam{}},
			},
			want: []uint32{
				1, 3, 5, 1, 3, 5, 1, 3, 5,
				1, 3, 5, 1, 3, 5, 1, 3, 5,
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(NghttpdProfile(), DefaultSite("testbed.example"))
			nc := &captureConn{}
			c := newConn(srv, nc)

			nc.push([]byte(frame.ClientPreface))
			if err := c.readPreface(); err != nil {
				t.Fatal(err)
			}
			if err := c.fr.WriteSettings(srv.profile.settings()...); err != nil {
				t.Fatal(err)
			}
			if err := c.fr.Flush(); err != nil {
				t.Fatal(err)
			}
			// Client SETTINGS and a connection WINDOW_UPDATE open both
			// window levels wide, so only the scheduler orders the DATA.
			nc.push(clientFrames(t, func(fr *frame.Framer) {
				if err := fr.WriteSettings(frame.Setting{
					ID: frame.SettingInitialWindowSize, Val: 1 << 30,
				}); err != nil {
					t.Fatal(err)
				}
				if err := fr.WriteWindowUpdate(0, 1<<30); err != nil {
					t.Fatal(err)
				}
			}))
			stepOK(t, c)
			stepOK(t, c)

			// All requests arrive as one pipelined burst: the batch
			// defers egress, so a single scheduling pass orders every
			// stream's response.
			enc := hpack.NewEncoder(hpack.PolicyNoDynamicInsert)
			var burst []byte
			for _, r := range tc.reqs {
				burst = append(burst, encodePriorityRequest(t, enc, r.id, path, r.prio)...)
			}
			nc.push(burst)
			mark := nc.wire.Len()
			for range tc.reqs {
				stepOK(t, c)
			}

			evs := parseWire(t, nc.wire.Bytes()[mark:])

			// Response HEADERS precede all DATA and follow arrival order.
			var headerOrder []uint32
			firstData := -1
			for i, ev := range evs {
				switch ev.typ {
				case frame.TypeHeaders:
					headerOrder = append(headerOrder, ev.streamID)
					if firstData >= 0 {
						t.Errorf("HEADERS for stream %d after first DATA frame", ev.streamID)
					}
				case frame.TypeData:
					if firstData < 0 {
						firstData = i
					}
				}
			}
			if len(headerOrder) != len(tc.reqs) {
				t.Fatalf("got %d response HEADERS, want %d", len(headerOrder), len(tc.reqs))
			}
			for i, r := range tc.reqs {
				if headerOrder[i] != r.id {
					t.Errorf("HEADERS[%d] = stream %d, want %d (arrival order)", i, headerOrder[i], r.id)
				}
			}

			// DATA frame order must match the hand-computed WRR walk.
			var got []uint32
			last := make(map[uint32]int)
			for i, ev := range evs {
				if ev.typ != frame.TypeData || ev.dataLen == 0 {
					continue
				}
				got = append(got, ev.streamID)
				last[ev.streamID] = i
				if ev.dataLen != 16384 {
					t.Errorf("DATA quantum on stream %d is %d bytes, want 16384", ev.streamID, ev.dataLen)
				}
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d DATA frames (%v), want %d (%v)", len(got), got, len(tc.want), tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("DATA order mismatch at frame %d:\n got %v\nwant %v", i, got, tc.want)
				}
			}

			// END_STREAM terminates exactly each stream's final quantum.
			counts := make(map[uint32]int)
			for _, id := range got {
				counts[id]++
			}
			for _, r := range tc.reqs {
				if counts[r.id] != quanta {
					t.Errorf("stream %d transmitted %d quanta, want %d", r.id, counts[r.id], quanta)
				}
				if !evs[last[r.id]].endStream {
					t.Errorf("stream %d final DATA frame missing END_STREAM", r.id)
				}
			}
			if len(c.streams) != 0 {
				t.Errorf("%d streams still open after drain", len(c.streams))
			}
		})
	}
}
