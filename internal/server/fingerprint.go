package server

import (
	"crypto/tls"
	"encoding/json"
	"net"

	"h2scope/internal/fingerprint"
	"h2scope/internal/frame"
	"h2scope/internal/hpack"
	"h2scope/internal/tlsutil"
)

// This file is the server half of the passive fingerprinting plane: the
// frame handlers feed an H2Assembler on the serve goroutine, the sealed
// akamai string is published for the detector and the metrics registry,
// and the /fp endpoint echoes everything back to the client.

// fingerprintPath is the reserved echo endpoint: a GET here returns the
// requesting client's own fingerprints as JSON instead of site content.
const fingerprintPath = "/fp"

// fpInit arms the fingerprint plane for one connection. The TLS hello
// accessor comes from the conn itself when the listener stack used
// tlsutil.NewFingerprintListener, or from Server.HelloSource otherwise.
func (c *conn) fpInit(nc net.Conn) {
	if c.srv.DisableFingerprint {
		return
	}
	c.fpa = &fingerprint.H2Assembler{}
	if hc, ok := nc.(tlsutil.HelloConn); ok {
		c.helloFn = hc.ClientHello
	} else if src := c.srv.HelloSource; src != nil {
		c.helloFn = func() *fingerprint.ClientHello { return src(nc) }
	}
}

// clientHello resolves the connection's TLS ClientHello, nil over
// cleartext transports or when fingerprinting is disabled.
func (c *conn) clientHello() *fingerprint.ClientHello {
	if c.helloFn == nil {
		return nil
	}
	return c.helloFn()
}

func (c *conn) fpOnSettings(settings []frame.Setting) {
	if c.fpa != nil {
		c.fpa.OnSettings(settings)
	}
}

func (c *conn) fpOnWindowUpdate(streamID, increment uint32) {
	if c.fpa != nil {
		c.fpa.OnWindowUpdate(streamID, increment)
	}
}

func (c *conn) fpOnPriority(f *frame.PriorityFrame) {
	if c.fpa != nil {
		c.fpa.OnPriority(fingerprint.H2Priority{
			StreamID:  f.Header().StreamID,
			Exclusive: f.Priority.Exclusive,
			DepStream: f.Priority.StreamDep,
			Weight:    f.Priority.Weight,
		})
	}
}

// fpOnHeaders seals the behavioral fingerprint on the first request: the
// akamai rendering is published for the detector goroutine, counted in
// the metrics registry, and — for adaptive profiles — answered with a
// client-class-dependent SETTINGS update.
func (c *conn) fpOnHeaders(fields []hpack.HeaderField) error {
	if c.fpa == nil || c.fpa.Complete() {
		return nil
	}
	c.fpa.OnRequestHeaders(fields)
	akamai := c.fpa.Fingerprint().Akamai()
	c.fpAkamai.Store(&akamai)
	if m := c.srv.Metrics; m != nil {
		ja4 := "none"
		if h := c.clientHello(); h != nil {
			ja4 = h.JA4()
		}
		m.fingerprintSeen(ja4, akamai)
	}
	return c.fpAdapt()
}

// fpAdapt implements Profile.FingerprintAdaptive: once the client's
// behavioral fingerprint matches a known profile, the server re-tunes
// SETTINGS_MAX_CONCURRENT_STREAMS by client class — browsers get a
// roomier budget than automation tools. The point of the knob is to give
// the census and the conformance suite a server whose observable
// behavior genuinely depends on who is asking.
func (c *conn) fpAdapt() error {
	if !c.srv.profile.FingerprintAdaptive {
		return nil
	}
	var limit uint32
	switch fingerprint.MatchProfile(c.fpa.Fingerprint()) {
	case "chrome", "firefox":
		limit = 256
	case "curl", "go":
		limit = 64
	default:
		return nil
	}
	return c.fr.WriteSettings(frame.Setting{ID: frame.SettingMaxConcurrentStreams, Val: limit})
}

// fpEcho assembles the /fp response document for the requesting client.
func (c *conn) fpEcho(st *stream) *fingerprint.Echo {
	echo := &fingerprint.Echo{JA4H: fingerprint.JA4H(st.reqHeaders)}
	if c.fpa != nil {
		fp := c.fpa.Fingerprint()
		echo.H2 = fp.Akamai()
		echo.H2Detail = fp
	}
	if h := c.clientHello(); h != nil {
		echo.JA3 = h.JA3()
		echo.JA3Hash = h.JA3Hash()
		echo.JA4 = h.JA4()
		echo.SNI = h.ServerName
	}
	if cs, ok := c.nc.(interface{ ConnectionState() tls.ConnectionState }); ok {
		echo.ALPN = cs.ConnectionState().NegotiatedProtocol
	}
	return echo
}

// respondFingerprint serves the /fp echo endpoint. It answers even with
// fingerprinting disabled (with an empty document) so probes can tell
// "endpoint exists" apart from "server fingerprints clients".
func (c *conn) respondFingerprint(st *stream) {
	body, err := json.Marshal(c.fpEcho(st))
	if err != nil {
		body = []byte("{}")
	}
	body = append(body, '\n')
	st.respHeaders = c.responseHeaders("200", "application/json", len(body), nil)
	st.body = body
	st.eager = true
	c.noteQueued(st)
}
