package fingerprint

import (
	"fmt"
	"sort"
	"strings"

	"h2scope/internal/frame"
	"h2scope/internal/trace"
)

// Exported traces carry frame headers but not payloads, so SETTINGS
// values and pseudo-header order are not recoverable offline. What is
// recoverable is the frame *sequence* each side produced before the
// first request — which already separates client families (Firefox's
// six PRIORITY frames, curl's single WINDOW_UPDATE, a bare Go client).
// A Sketch is that reduced, payload-free behavioral fingerprint.

// Sketch is the offline behavioral sketch of one traced connection.
type Sketch struct {
	// Conn is the connection ID within the trace.
	Conn uint64
	// Sent and Received are the pre-request frame-type sequences, as
	// comma-joined short type names (e.g. "SETTINGS,WINDOW_UPDATE,HEADERS").
	Sent     string
	Received string
	// Priorities counts pre-request PRIORITY frames sent by the client.
	Priorities int
	// Guess names the builtin client profile whose frame sequence
	// matches Sent, "" if none does.
	Guess string
}

// String renders the sketch as one line for the h2fp CLI.
func (s Sketch) String() string {
	guess := s.Guess
	if guess == "" {
		guess = "?"
	}
	return fmt.Sprintf("conn %d: sent [%s] recv [%s] priorities=%d guess=%s",
		s.Conn, s.Sent, s.Received, s.Priorities, guess)
}

// preRequestLimit bounds how many frames of each direction a sketch
// consumes: everything up to and including the first HEADERS.
func sequenceUntilHeaders(types []frame.Type) string {
	var names []string
	for _, t := range types {
		names = append(names, t.String())
		if t == frame.TypeHeaders {
			break
		}
	}
	return strings.Join(names, ",")
}

// Sketches reduces an exported trace to per-connection behavioral
// sketches, ordered by connection ID.
func Sketches(data *trace.Data) []Sketch {
	type dirs struct {
		sent, recv []frame.Type
	}
	conns := map[uint64]*dirs{}
	order := []uint64{}
	for _, ev := range data.Events {
		if ev.Kind != trace.KindFrameSent && ev.Kind != trace.KindFrameRecv {
			continue
		}
		// SETTINGS ACKs are reactions to the peer, not client behavior;
		// dropping them keeps sequences comparable across ack timing.
		if ev.FrameType == frame.TypeSettings && ev.Flags.Has(frame.FlagAck) {
			continue
		}
		d := conns[ev.Conn]
		if d == nil {
			d = &dirs{}
			conns[ev.Conn] = d
			order = append(order, ev.Conn)
		}
		if ev.Kind == trace.KindFrameSent {
			d.sent = append(d.sent, ev.FrameType)
		} else {
			d.recv = append(d.recv, ev.FrameType)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]Sketch, 0, len(order))
	for _, id := range order {
		d := conns[id]
		s := Sketch{
			Conn:     id,
			Sent:     sequenceUntilHeaders(d.sent),
			Received: sequenceUntilHeaders(d.recv),
		}
		for _, t := range d.sent {
			if t == frame.TypeHeaders {
				break
			}
			if t == frame.TypePriority {
				s.Priorities++
			}
		}
		s.Guess = guessProfile(s.Sent)
		out = append(out, s)
	}
	return out
}

// guessProfile matches a sent-frame sequence against the builtin
// profiles' expected preambles.
func guessProfile(sent string) string {
	for _, p := range BuiltinProfiles() {
		if sent == profileSequence(p) {
			return p.Name
		}
	}
	return ""
}

// profileSequence renders the frame-type sequence a faithful
// impersonation of p emits up to its first request.
func profileSequence(p *ClientProfile) string {
	types := []frame.Type{frame.TypeSettings}
	if p.ConnWindowDelta > 0 {
		types = append(types, frame.TypeWindowUpdate)
	}
	for range p.Priorities {
		types = append(types, frame.TypePriority)
	}
	types = append(types, frame.TypeHeaders)
	return sequenceUntilHeaders(types)
}
