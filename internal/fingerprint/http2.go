package fingerprint

import (
	"fmt"
	"strings"

	"h2scope/internal/frame"
	"h2scope/internal/hpack"
)

// H2Priority is one PRIORITY frame (or HEADERS priority block) observed
// before the first request, in the akamai fingerprint's terms.
type H2Priority struct {
	StreamID  uint32 `json:"stream"`
	Exclusive bool   `json:"exclusive"`
	DepStream uint32 `json:"dep"`
	Weight    uint8  `json:"weight"`
}

// H2Fingerprint is the HTTP/2 behavioral fingerprint of one client
// connection, assembled from the frames between the connection preface
// and the first complete request.
type H2Fingerprint struct {
	// Settings is the client's initial SETTINGS list in wire order.
	Settings []frame.Setting `json:"settings"`
	// WindowUpdate is the first connection-level WINDOW_UPDATE increment
	// sent before the first request; 0 if the client sent none.
	WindowUpdate uint32 `json:"window_update"`
	// Priorities lists PRIORITY frames sent before the first request.
	Priorities []H2Priority `json:"priorities,omitempty"`
	// PseudoOrder is the order of the pseudo-header fields on the first
	// request, e.g. [":method", ":authority", ":scheme", ":path"].
	PseudoOrder []string `json:"pseudo_order"`
}

// Akamai renders the fingerprint in the widely used akamai format:
//
//	S1:V1;S2:V2|WU|P1,P2|pseudo
//
// SETTINGS as id:value pairs in order, then the connection WINDOW_UPDATE
// delta, then each PRIORITY frame as stream:exclusive:dep:weight (or "0"
// if none), then the pseudo-header initials joined by commas.
func (f *H2Fingerprint) Akamai() string {
	var b strings.Builder
	b.Grow(96)
	for i, s := range f.Settings {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d:%d", uint16(s.ID), s.Val)
	}
	fmt.Fprintf(&b, "|%d|", f.WindowUpdate)
	if len(f.Priorities) == 0 {
		b.WriteByte('0')
	}
	for i, p := range f.Priorities {
		if i > 0 {
			b.WriteByte(',')
		}
		excl := 0
		if p.Exclusive {
			excl = 1
		}
		fmt.Fprintf(&b, "%d:%d:%d:%d", p.StreamID, excl, p.DepStream, p.Weight)
	}
	b.WriteByte('|')
	for i, name := range f.PseudoOrder {
		if i > 0 {
			b.WriteByte(',')
		}
		if len(name) >= 2 {
			b.WriteByte(name[1]) // ":method" → 'm', ":path" → 'p', ...
		}
	}
	return b.String()
}

// maxPriorities bounds how many pre-request PRIORITY frames the assembler
// retains, so a priority-flooding client cannot grow the fingerprint
// without bound. Firefox, the chattiest real client, sends six.
const maxPriorities = 16

// H2Assembler accumulates the behavioral fingerprint of one connection.
// It is fed from the server's frame handlers and is not safe for
// concurrent use; the server calls it only from the serve goroutine.
type H2Assembler struct {
	fp   H2Fingerprint
	done bool
}

// OnSettings records the client's initial SETTINGS list. Only the first
// (pre-request) SETTINGS frame contributes to the fingerprint.
func (a *H2Assembler) OnSettings(settings []frame.Setting) {
	if a.done || a.fp.Settings != nil {
		return
	}
	a.fp.Settings = append([]frame.Setting(nil), settings...)
}

// OnWindowUpdate records the first pre-request connection-level window
// increment. Stream-level updates are ignored.
func (a *H2Assembler) OnWindowUpdate(streamID, delta uint32) {
	if a.done || streamID != 0 || a.fp.WindowUpdate != 0 {
		return
	}
	a.fp.WindowUpdate = delta
}

// OnPriority records a pre-request PRIORITY frame.
func (a *H2Assembler) OnPriority(p H2Priority) {
	if a.done || len(a.fp.Priorities) >= maxPriorities {
		return
	}
	a.fp.Priorities = append(a.fp.Priorities, p)
}

// OnRequestHeaders records the pseudo-header order of the first request
// and completes the fingerprint.
func (a *H2Assembler) OnRequestHeaders(fields []hpack.HeaderField) {
	if a.done {
		return
	}
	for _, f := range fields {
		if strings.HasPrefix(f.Name, ":") {
			a.fp.PseudoOrder = append(a.fp.PseudoOrder, f.Name)
		}
	}
	a.done = true
}

// Complete reports whether a first request has sealed the fingerprint.
func (a *H2Assembler) Complete() bool { return a.done }

// Fingerprint returns the assembled fingerprint so far. The pointer stays
// owned by the assembler; callers must not retain it across further
// frame events unless Complete is true.
func (a *H2Assembler) Fingerprint() *H2Fingerprint { return &a.fp }
