package fingerprint

import (
	"testing"

	"h2scope/internal/frame"
	"h2scope/internal/hpack"
)

// Reference akamai-format strings for the builtin client profiles,
// written out by hand from the published per-client preambles.
var akamaiGolden = map[string]string{
	"chrome":  "1:65536;2:0;3:1000;4:6291456;6:262144|15663105|0|m,a,s,p",
	"firefox": "1:65536;4:131072;5:16384|12517377|3:0:0:200,5:0:0:100,7:0:0:0,9:0:7:0,11:0:3:0,13:0:0:240|m,p,a,s",
	"curl":    "3:100;4:10485760|1048510465|0|m,p,s,a",
	"go":      "2:0;4:4194304;6:10485760|1073741824|0|m,p,a,s",
}

func TestAkamaiGolden(t *testing.T) {
	for _, p := range BuiltinProfiles() {
		want, ok := akamaiGolden[p.Name]
		if !ok {
			t.Errorf("no golden string for profile %s", p.Name)
			continue
		}
		if got := p.ExpectedAkamai(); got != want {
			t.Errorf("%s akamai\n got %s\nwant %s", p.Name, got, want)
		}
	}
}

// TestAssembler drives the assembler the way the server's frame handlers
// do and checks the assembled fingerprint matches the profile it mimics.
func TestAssembler(t *testing.T) {
	p := FirefoxProfile()
	var a H2Assembler
	a.OnSettings(p.Settings)
	a.OnWindowUpdate(0, p.ConnWindowDelta)
	for _, pr := range p.Priorities {
		a.OnPriority(pr)
	}
	if a.Complete() {
		t.Fatal("complete before first request")
	}
	a.OnRequestHeaders([]hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: "/"},
		{Name: ":authority", Value: "x"},
		{Name: ":scheme", Value: "https"},
		{Name: "user-agent", Value: "test"},
	})
	if !a.Complete() {
		t.Fatal("not complete after first request")
	}
	if got, want := a.Fingerprint().Akamai(), p.ExpectedAkamai(); got != want {
		t.Errorf("assembled akamai\n got %s\nwant %s", got, want)
	}
}

// TestAssemblerFirstWins: only pre-request frames and only the first
// SETTINGS / connection WINDOW_UPDATE count.
func TestAssemblerFirstWins(t *testing.T) {
	var a H2Assembler
	a.OnSettings([]frame.Setting{{ID: frame.SettingEnablePush, Val: 0}})
	a.OnSettings([]frame.Setting{{ID: frame.SettingMaxFrameSize, Val: 1 << 20}})
	a.OnWindowUpdate(3, 999) // stream-level: ignored
	a.OnWindowUpdate(0, 100)
	a.OnWindowUpdate(0, 200) // second conn update: ignored
	a.OnRequestHeaders([]hpack.HeaderField{{Name: ":method", Value: "GET"}, {Name: ":path", Value: "/"}})
	a.OnSettings([]frame.Setting{{ID: frame.SettingHeaderTableSize, Val: 1}}) // post-request: ignored
	a.OnPriority(H2Priority{StreamID: 5})                                     // post-request: ignored
	if got, want := a.Fingerprint().Akamai(), "2:0|100|0|m,p"; got != want {
		t.Errorf("akamai = %s, want %s", got, want)
	}
}

// TestAssemblerPriorityCap bounds fingerprint growth under priority floods.
func TestAssemblerPriorityCap(t *testing.T) {
	var a H2Assembler
	for i := 0; i < 10*maxPriorities; i++ {
		a.OnPriority(H2Priority{StreamID: uint32(2*i + 3)})
	}
	if n := len(a.Fingerprint().Priorities); n != maxPriorities {
		t.Errorf("retained %d priorities, want cap %d", n, maxPriorities)
	}
}

func TestEmptyFingerprint(t *testing.T) {
	var a H2Assembler
	a.OnRequestHeaders(nil)
	if got, want := a.Fingerprint().Akamai(), "|0|0|"; got != want {
		t.Errorf("empty akamai = %q, want %q", got, want)
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("Chrome")
	if err != nil || p.Name != "chrome" {
		t.Errorf("ProfileByName(Chrome) = %v, %v", p, err)
	}
	if _, err := ProfileByName("safari"); err == nil {
		t.Error("ProfileByName(safari) succeeded, want error")
	}
}

// TestCensusResultObserved checks the cross-profile differ logic.
func TestCensusResultObserved(t *testing.T) {
	r := CensusResult{Clients: []ClientObservation{
		{Profile: "curl", OK: true, H2: "a|b", BodyDigest: "d1", ServerSettings: "s"},
		{Profile: "chrome", OK: true, H2: "c|d", BodyDigest: "d1", ServerSettings: "s"},
		{Profile: "go", OK: false, Error: "dial"},
	}}
	r.Observed()
	if !r.EchoOK || r.Differs {
		t.Errorf("EchoOK=%v Differs=%v, want true,false", r.EchoOK, r.Differs)
	}
	r.Clients[1].BodyDigest = "d2"
	r.Observed()
	if !r.Differs {
		t.Error("Differs=false after digest change, want true")
	}
	r.Clients[1].BodyDigest = "d1"
	r.Clients[1].ServerSettings = "s2"
	r.Observed()
	if !r.Differs {
		t.Error("Differs=false after settings change, want true")
	}
}
