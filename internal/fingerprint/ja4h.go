package fingerprint

import (
	"fmt"
	"sort"
	"strings"

	"h2scope/internal/hpack"
)

// JA4H renders the FoxIO JA4H HTTP-request fingerprint from one decoded
// request header list (pseudo-headers included, in wire order):
//
//	a_b_c_d
//
// a = method + HTTP version + cookie/referer markers + header count +
// primary Accept-Language; b = truncated SHA-256 of the header names in
// order; c and d = truncated SHA-256 of the sorted cookie names and
// sorted cookie name=value pairs ("000000000000" without cookies).
// Pseudo-headers, Cookie, and Referer are excluded from the count and
// from the hashed name list, per spec.
func JA4H(fields []hpack.HeaderField) string {
	var (
		names      []string
		cookies    []string
		cookieKVs  []string
		hasCookie  bool
		hasReferer bool
		method     = "??"
		acceptLang = "0000"
	)
	for _, f := range fields {
		name := strings.ToLower(f.Name)
		switch {
		case strings.HasPrefix(name, ":"):
			if name == ":method" && f.Value != "" {
				method = strings.ToLower(f.Value)
				if len(method) > 2 {
					method = method[:2]
				}
			}
			continue
		case name == "cookie":
			hasCookie = true
			for _, kv := range splitCookies(f.Value) {
				cookieKVs = append(cookieKVs, kv)
				if eq := strings.IndexByte(kv, '='); eq >= 0 {
					cookies = append(cookies, kv[:eq])
				} else {
					cookies = append(cookies, kv)
				}
			}
			continue
		case name == "referer":
			hasReferer = true
			continue
		}
		if name == "accept-language" {
			acceptLang = primaryLanguage(f.Value)
		}
		names = append(names, name)
	}

	var a strings.Builder
	a.WriteString(method)
	a.WriteString("20") // this plane only fingerprints HTTP/2 requests
	a.WriteByte(marker(hasCookie, 'c'))
	a.WriteByte(marker(hasReferer, 'r'))
	fmt.Fprintf(&a, "%02d", min99(len(names)))
	a.WriteString(acceptLang)

	b := truncatedSHA256(strings.Join(names, ","))

	c, d := ja4EmptyHash, ja4EmptyHash
	if len(cookies) > 0 {
		sort.Strings(cookies)
		sort.Strings(cookieKVs)
		c = truncatedSHA256(strings.Join(cookies, ","))
		d = truncatedSHA256(strings.Join(cookieKVs, ","))
	}
	return a.String() + "_" + b + "_" + c + "_" + d
}

func marker(present bool, c byte) byte {
	if present {
		return c
	}
	return 'n'
}

// splitCookies splits a Cookie header value on "; " boundaries, trimming
// surrounding whitespace from each pair.
func splitCookies(v string) []string {
	var out []string
	for _, part := range strings.Split(v, ";") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// primaryLanguage renders the first Accept-Language tag as four lowercase
// characters with the dash removed, zero-padded ("en-US" → "enus",
// "ru" → "ru00", absent → "0000").
func primaryLanguage(v string) string {
	if i := strings.IndexAny(v, ",;"); i >= 0 {
		v = v[:i]
	}
	v = strings.ToLower(strings.ReplaceAll(strings.TrimSpace(v), "-", ""))
	out := make([]byte, 4)
	for i := range out {
		if i < len(v) {
			out[i] = v[i]
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
