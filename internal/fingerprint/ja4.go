package fingerprint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// JA4 renders the FoxIO JA4 TLS-client fingerprint:
//
//	a_b_c
//
// where a = transport + TLS version + SNI marker + cipher count +
// extension count + first/last ALPN chars, b = truncated SHA-256 of the
// sorted cipher list, and c = truncated SHA-256 of the sorted extension
// list (SNI and ALPN excluded) plus the signature algorithms in client
// order. GREASE values are excluded everywhere.
func (h *ClientHello) JA4() string {
	return h.ja4a() + "_" + h.ja4b() + "_" + h.ja4c()
}

const ja4EmptyHash = "000000000000"

// ja4a builds the human-readable prefix, e.g. "t13d1516h2".
func (h *ClientHello) ja4a() string {
	var b strings.Builder
	b.Grow(10)
	b.WriteByte('t') // this plane only sees TCP transports
	b.WriteString(ja4Version(h.helloVersion()))
	if h.ServerName != "" {
		b.WriteByte('d') // destination known: SNI present
	} else {
		b.WriteByte('i') // IP-style hello: no SNI
	}
	fmt.Fprintf(&b, "%02d", min99(countNonGREASE(h.CipherSuites)))
	fmt.Fprintf(&b, "%02d", min99(countNonGREASE(h.Extensions)))
	b.WriteString(ja4ALPN(h.ALPN))
	return b.String()
}

// ja4b hashes the sorted GREASE-filtered cipher suites.
func (h *ClientHello) ja4b() string {
	return truncatedSHA256(hexJoinSorted(h.CipherSuites))
}

// ja4c hashes the sorted GREASE-filtered extensions — minus SNI and ALPN,
// which JA4 treats as content rather than shape — with the signature
// algorithms appended in original order.
func (h *ClientHello) ja4c() string {
	exts := make([]uint16, 0, len(h.Extensions))
	for _, e := range h.Extensions {
		if IsGREASE(e) || ExtensionID(e) == ExtServerName || ExtensionID(e) == ExtALPN {
			continue
		}
		exts = append(exts, e)
	}
	s := hexJoinSorted(exts)
	if sigs := hexJoin(h.SignatureAlgorithms); sigs != "" {
		s += "_" + sigs
	}
	return truncatedSHA256(s)
}

// helloVersion is the negotiable TLS version the hello advertises: the
// highest non-GREASE supported_versions entry when present, the
// legacy_version otherwise.
func (h *ClientHello) helloVersion() uint16 {
	var best uint16
	for _, v := range h.SupportedVersions {
		if !IsGREASE(v) && v > best {
			best = v
		}
	}
	if best != 0 {
		return best
	}
	return h.Version
}

func ja4Version(v uint16) string {
	switch v {
	case 0x0304:
		return "13"
	case 0x0303:
		return "12"
	case 0x0302:
		return "11"
	case 0x0301:
		return "10"
	case 0x0300:
		return "s3"
	default:
		return "00"
	}
}

// ja4ALPN renders the first and last characters of the first offered ALPN
// protocol, "00" when none was offered. Non-printable edge characters
// fall back to their low hex nibbles, matching the JA4 spec's handling of
// binary ALPN values.
func ja4ALPN(alpn []string) string {
	if len(alpn) == 0 || alpn[0] == "" {
		return "00"
	}
	p := alpn[0]
	first, last := p[0], p[len(p)-1]
	if !isAlnum(first) || !isAlnum(last) {
		const hexdig = "0123456789abcdef"
		return string([]byte{hexdig[first&0x0f], hexdig[last&0x0f]})
	}
	return string([]byte{first, last})
}

func isAlnum(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func countNonGREASE(vs []uint16) int {
	n := 0
	for _, v := range vs {
		if !IsGREASE(v) {
			n++
		}
	}
	return n
}

func min99(n int) int {
	if n > 99 {
		return 99
	}
	return n
}

// hexJoin renders vs as comma-joined 4-digit lowercase hex, skipping
// GREASE, preserving order.
func hexJoin(vs []uint16) string {
	var b strings.Builder
	b.Grow(5 * len(vs))
	first := true
	for _, v := range vs {
		if IsGREASE(v) {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%04x", v)
	}
	return b.String()
}

// hexJoinSorted is hexJoin over an ascending copy of vs.
func hexJoinSorted(vs []uint16) string {
	sorted := make([]uint16, 0, len(vs))
	for _, v := range vs {
		if !IsGREASE(v) {
			sorted = append(sorted, v)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return hexJoin(sorted)
}

// truncatedSHA256 is the 12-hex-character truncated SHA-256 JA4 uses for
// its hashed segments; the empty input maps to twelve zeros by spec.
func truncatedSHA256(s string) string {
	if s == "" {
		return ja4EmptyHash
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:6])
}
