package fingerprint

import (
	"fmt"
	"strings"

	"h2scope/internal/frame"
	"h2scope/internal/hpack"
)

// ClientProfile describes how one real-world HTTP/2 client behaves on the
// wire: the SETTINGS it sends (order and values), the connection-level
// WINDOW_UPDATE it issues after the preface, any PRIORITY frames, the
// pseudo-header order of its requests, and characteristic plain headers.
// h2conn uses profiles to impersonate clients; the test suite uses the
// same profiles as the expected values a fingerprinting server should
// read back.
type ClientProfile struct {
	// Name identifies the profile ("chrome", "firefox", "curl", "go").
	Name string
	// Settings is the initial SETTINGS list, in the order the client
	// writes it.
	Settings []frame.Setting
	// ConnWindowDelta is the connection-level WINDOW_UPDATE increment
	// sent right after SETTINGS (0 = none).
	ConnWindowDelta uint32
	// Priorities are PRIORITY frames sent before the first request.
	Priorities []H2Priority
	// PseudoOrder is the request pseudo-header order.
	PseudoOrder []string
	// Headers are characteristic plain request headers (user-agent and
	// friends), appended after the pseudo-headers in this order.
	Headers []hpack.HeaderField
}

// Expected returns the H2Fingerprint a passive observer should assemble
// from a faithful impersonation of this profile.
func (p *ClientProfile) Expected() *H2Fingerprint {
	return &H2Fingerprint{
		Settings:     append([]frame.Setting(nil), p.Settings...),
		WindowUpdate: p.ConnWindowDelta,
		Priorities:   append([]H2Priority(nil), p.Priorities...),
		PseudoOrder:  append([]string(nil), p.PseudoOrder...),
	}
}

// ExpectedAkamai is the akamai-format string Expected renders to.
func (p *ClientProfile) ExpectedAkamai() string { return p.Expected().Akamai() }

// Pseudo-header order shorthands.
var (
	orderMASP = []string{":method", ":authority", ":scheme", ":path"}
	orderMPAS = []string{":method", ":path", ":authority", ":scheme"}
	orderMPSA = []string{":method", ":path", ":scheme", ":authority"}
)

// ChromeProfile models Chrome's h2 preamble: five SETTINGS, a ~15 MB
// connection window bump, no standalone PRIORITY frames, and the
// distinctive m,a,s,p pseudo-header order.
func ChromeProfile() *ClientProfile {
	return &ClientProfile{
		Name: "chrome",
		Settings: []frame.Setting{
			{ID: frame.SettingHeaderTableSize, Val: 65536},
			{ID: frame.SettingEnablePush, Val: 0},
			{ID: frame.SettingMaxConcurrentStreams, Val: 1000},
			{ID: frame.SettingInitialWindowSize, Val: 6291456},
			{ID: frame.SettingMaxHeaderListSize, Val: 262144},
		},
		ConnWindowDelta: 15663105,
		PseudoOrder:     orderMASP,
		Headers: []hpack.HeaderField{
			{Name: "user-agent", Value: "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/120.0.0.0 Safari/537.36"},
			{Name: "accept", Value: "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8"},
			{Name: "accept-language", Value: "en-US,en;q=0.9"},
		},
	}
}

// FirefoxProfile models Firefox: three SETTINGS, a ~12 MB window bump,
// and its signature priority tree built with six PRIORITY frames on
// odd placeholder streams, with m,p,a,s pseudo-header order.
func FirefoxProfile() *ClientProfile {
	return &ClientProfile{
		Name: "firefox",
		Settings: []frame.Setting{
			{ID: frame.SettingHeaderTableSize, Val: 65536},
			{ID: frame.SettingInitialWindowSize, Val: 131072},
			{ID: frame.SettingMaxFrameSize, Val: 16384},
		},
		ConnWindowDelta: 12517377,
		Priorities: []H2Priority{
			{StreamID: 3, DepStream: 0, Weight: 200},
			{StreamID: 5, DepStream: 0, Weight: 100},
			{StreamID: 7, DepStream: 0, Weight: 0},
			{StreamID: 9, DepStream: 7, Weight: 0},
			{StreamID: 11, DepStream: 3, Weight: 0},
			{StreamID: 13, DepStream: 0, Weight: 240},
		},
		PseudoOrder: orderMPAS,
		Headers: []hpack.HeaderField{
			{Name: "user-agent", Value: "Mozilla/5.0 (X11; Linux x86_64; rv:121.0) Gecko/20100101 Firefox/121.0"},
			{Name: "accept", Value: "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8"},
			{Name: "accept-language", Value: "en-US,en;q=0.5"},
		},
	}
}

// CurlProfile models curl with nghttp2: two SETTINGS and a ~1 GB window
// bump, no priorities, m,p,s,a pseudo-header order.
func CurlProfile() *ClientProfile {
	return &ClientProfile{
		Name: "curl",
		Settings: []frame.Setting{
			{ID: frame.SettingMaxConcurrentStreams, Val: 100},
			{ID: frame.SettingInitialWindowSize, Val: 10485760},
		},
		ConnWindowDelta: 1048510465,
		PseudoOrder:     orderMPSA,
		Headers: []hpack.HeaderField{
			{Name: "user-agent", Value: "curl/8.5.0"},
			{Name: "accept", Value: "*/*"},
		},
	}
}

// GoNetHTTPProfile models Go's net/http x/net/http2 transport: three
// SETTINGS and the 1 GiB transportDefaultConnFlow window bump, m,p,a,s
// pseudo-header order.
func GoNetHTTPProfile() *ClientProfile {
	return &ClientProfile{
		Name: "go",
		Settings: []frame.Setting{
			{ID: frame.SettingEnablePush, Val: 0},
			{ID: frame.SettingInitialWindowSize, Val: 4194304},
			{ID: frame.SettingMaxHeaderListSize, Val: 10485760},
		},
		ConnWindowDelta: 1073741824,
		PseudoOrder:     orderMPAS,
		Headers: []hpack.HeaderField{
			{Name: "user-agent", Value: "Go-http-client/2.0"},
			{Name: "accept-encoding", Value: "gzip"},
		},
	}
}

// BuiltinProfiles returns the impersonation catalog in a stable order.
func BuiltinProfiles() []*ClientProfile {
	return []*ClientProfile{CurlProfile(), ChromeProfile(), FirefoxProfile(), GoNetHTTPProfile()}
}

// MatchProfile returns the name of the builtin profile whose expected
// akamai fingerprint equals fp's rendering, or "" when no profile
// matches — the passive classification a fingerprinting server applies.
func MatchProfile(fp *H2Fingerprint) string {
	got := fp.Akamai()
	for _, p := range BuiltinProfiles() {
		if got == p.ExpectedAkamai() {
			return p.Name
		}
	}
	return ""
}

// ProfileByName resolves a profile by its Name, case-insensitively.
func ProfileByName(name string) (*ClientProfile, error) {
	for _, p := range BuiltinProfiles() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fingerprint: unknown client profile %q (want curl, chrome, firefox, or go)", name)
}
