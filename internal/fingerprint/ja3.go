package fingerprint

import (
	"crypto/md5"
	"encoding/hex"
	"strconv"
	"strings"
)

// JA3 renders the canonical JA3 string for the hello:
//
//	SSLVersion,Ciphers,Extensions,EllipticCurves,EllipticCurvePointFormats
//
// with each field a dash-joined decimal list in client order and GREASE
// values removed, per the original Salesforce definition.
func (h *ClientHello) JA3() string {
	var b strings.Builder
	b.Grow(256)
	b.WriteString(strconv.Itoa(int(h.Version)))
	b.WriteByte(',')
	writeDecList(&b, h.CipherSuites)
	b.WriteByte(',')
	writeDecList(&b, h.Extensions)
	b.WriteByte(',')
	writeDecList(&b, h.Groups)
	b.WriteByte(',')
	for i, p := range h.PointFormats {
		if i > 0 {
			b.WriteByte('-')
		}
		b.WriteString(strconv.Itoa(int(p)))
	}
	return b.String()
}

// JA3Hash is the hex MD5 of the JA3 string — the form usually exchanged
// in blocklists and telemetry.
func (h *ClientHello) JA3Hash() string {
	sum := md5.Sum([]byte(h.JA3()))
	return hex.EncodeToString(sum[:])
}

// writeDecList appends the GREASE-filtered decimal dash-joined rendering
// of vs to b.
func writeDecList(b *strings.Builder, vs []uint16) {
	first := true
	for _, v := range vs {
		if IsGREASE(v) {
			continue
		}
		if !first {
			b.WriteByte('-')
		}
		first = false
		b.WriteString(strconv.Itoa(int(v)))
	}
}
