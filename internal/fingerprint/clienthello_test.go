package fingerprint

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadHello reads a canned ClientHello hex fixture from testdata. The
// fixtures were built independently from RFC 8446's wire grammar (and the
// expected strings below derived by hand from the JA3/JA4 specs), so the
// test checks the parser against the format, not against itself.
func loadHello(t testing.TB, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	data, err := hex.DecodeString(strings.Join(strings.Fields(string(raw)), ""))
	if err != nil {
		t.Fatalf("fixture %s: bad hex: %v", name, err)
	}
	return data
}

// golden holds the hand-derived reference strings per fixture.
var golden = []struct {
	fixture  string
	ja3      string
	ja3Hash  string
	ja4      string
	sni      string
	alpn     []string
	ciphers  int // raw count, GREASE included
	grease   bool
	versions int
}{
	{
		fixture: "chrome.hex",
		ja3:     "771,4865-4866-4867-49195-49199-49196-49200-52393-52392-49171-49172-156-157-47-53,0-23-65281-10-11-35-16-5-13-18-51-45-43-27-17513-21,29-23-24,0",
		ja3Hash: "cd08e31494f9531f560d64c695473da9",
		ja4:     "t13d1516h2_8daaf6152771_e5627efa2ab1",
		sni:     "example.com",
		alpn:    []string{"h2", "http/1.1"},
		ciphers: 16, grease: true, versions: 3,
	},
	{
		fixture: "curl.hex",
		ja3:     "771,49196-49200-159-52393-52392-52394-49195-49199-158-49188-49192-107-49187-49191-103-49162-49172-57-49161-49171-51-157-156-61-60-53-47-255,0-11-10-35-22-23-13-16,29-23-30-25-24,0-1-2",
		ja3Hash: "38256a71363b37aca0317a1ca40ea791",
		ja4:     "t12d2808h2_d943125447b4_a8cc486ca5dc",
		sni:     "example.com",
		alpn:    []string{"h2", "http/1.1"},
		ciphers: 28, grease: false, versions: 0,
	},
	{
		fixture: "go.hex",
		ja3:     "771,4865-4866-4867-49195-49199-49196-49200-52393-52392-49161-49171-49162-49172-156-157-47-53,0-5-10-11-13-65281-16-18-35-23-43-51,29-23-24-25,0",
		ja3Hash: "07ad9424d16974c2c0487f005ee14d03",
		ja4:     "t13d1712h2_5b57614c22b0_2dd10c1a5aba",
		sni:     "example.com",
		alpn:    []string{"h2", "http/1.1"},
		ciphers: 17, grease: false, versions: 2,
	},
}

func TestGoldenVectors(t *testing.T) {
	for _, g := range golden {
		t.Run(g.fixture, func(t *testing.T) {
			hello, err := ParseClientHello(loadHello(t, g.fixture))
			if err != nil {
				t.Fatalf("ParseClientHello: %v", err)
			}
			if got := hello.JA3(); got != g.ja3 {
				t.Errorf("JA3\n got %s\nwant %s", got, g.ja3)
			}
			if got := hello.JA3Hash(); got != g.ja3Hash {
				t.Errorf("JA3Hash = %s, want %s", got, g.ja3Hash)
			}
			if got := hello.JA4(); got != g.ja4 {
				t.Errorf("JA4 = %s, want %s", got, g.ja4)
			}
			if hello.ServerName != g.sni {
				t.Errorf("ServerName = %q, want %q", hello.ServerName, g.sni)
			}
			if len(hello.ALPN) != len(g.alpn) || hello.ALPN[0] != g.alpn[0] {
				t.Errorf("ALPN = %v, want %v", hello.ALPN, g.alpn)
			}
			if !hello.SupportsH2() {
				t.Error("SupportsH2 = false, want true")
			}
			if len(hello.CipherSuites) != g.ciphers {
				t.Errorf("raw cipher count = %d, want %d", len(hello.CipherSuites), g.ciphers)
			}
			if len(hello.SupportedVersions) != g.versions {
				t.Errorf("supported_versions count = %d, want %d", len(hello.SupportedVersions), g.versions)
			}
			hasGREASE := false
			for _, c := range hello.CipherSuites {
				hasGREASE = hasGREASE || IsGREASE(c)
			}
			if hasGREASE != g.grease {
				t.Errorf("GREASE in ciphers = %v, want %v", hasGREASE, g.grease)
			}
		})
	}
}

// TestParseBareHandshake strips the record layer: the parser must accept
// a handshake message directly (the GetConfigForClient path sees no
// records).
func TestParseBareHandshake(t *testing.T) {
	rec := loadHello(t, "chrome.hex")
	bare := rec[5:]
	fromRecord, err := ParseClientHello(rec)
	if err != nil {
		t.Fatalf("record parse: %v", err)
	}
	fromBare, err := ParseClientHello(bare)
	if err != nil {
		t.Fatalf("bare parse: %v", err)
	}
	if fromBare.JA3() != fromRecord.JA3() {
		t.Errorf("bare JA3 %s != record JA3 %s", fromBare.JA3(), fromRecord.JA3())
	}
}

// TestParseFragmentedRecords splits the hello across two TLS records; the
// reassembler must produce the same fingerprint.
func TestParseFragmentedRecords(t *testing.T) {
	rec := loadHello(t, "chrome.hex")
	payload := rec[5:]
	cut := len(payload) / 3
	frag := func(p []byte) []byte {
		return append([]byte{0x16, 0x03, 0x01, byte(len(p) >> 8), byte(len(p))}, p...)
	}
	split := append(frag(payload[:cut]), frag(payload[cut:])...)
	whole, err := ParseClientHello(rec)
	if err != nil {
		t.Fatalf("whole parse: %v", err)
	}
	parts, err := ParseClientHello(split)
	if err != nil {
		t.Fatalf("fragmented parse: %v", err)
	}
	if parts.JA4() != whole.JA4() {
		t.Errorf("fragmented JA4 %s != whole JA4 %s", parts.JA4(), whole.JA4())
	}
}

func TestParseErrors(t *testing.T) {
	rec := loadHello(t, "curl.hex")
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"not-handshake", []byte{0x17, 0x03, 0x03, 0x00, 0x01, 0x00}},
		{"short-record", rec[:4]},
		{"truncated-body", rec[:len(rec)/2]},
		{"zero-length-record", []byte{0x16, 0x03, 0x01, 0x00, 0x00}},
		{"server-hello", append([]byte{0x16, 0x03, 0x03, 0x00, 0x05, 0x02}, 0, 0, 1, 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if hello, err := ParseClientHello(tc.data); err == nil {
				t.Errorf("parse succeeded (%v), want error", hello)
			}
		})
	}
}

// TestGREASETable pins the GREASE predicate to RFC 8701's 16 values.
func TestGREASETable(t *testing.T) {
	n := 0
	for v := 0; v <= 0xffff; v++ {
		if IsGREASE(uint16(v)) {
			n++
			if byte(v)&0x0f != 0x0a {
				t.Fatalf("IsGREASE(%#04x) = true", v)
			}
		}
	}
	if n != 16 {
		t.Errorf("GREASE value count = %d, want 16", n)
	}
}

// TestJA4NoSNINoALPN checks the i marker and empty-ALPN placeholder.
func TestJA4NoSNINoALPN(t *testing.T) {
	hello, err := ParseClientHello(loadHello(t, "curl.hex"))
	if err != nil {
		t.Fatal(err)
	}
	hello.ServerName = ""
	hello.ALPN = nil
	ja4 := hello.JA4()
	if !strings.HasPrefix(ja4, "t12i2808") {
		t.Errorf("JA4 without SNI = %s, want t12i2808... prefix", ja4)
	}
	if !strings.HasPrefix(ja4[8:], "00_") {
		t.Errorf("JA4 without ALPN = %s, want 00 marker", ja4)
	}
}
