package fingerprint

import (
	"bytes"
	"crypto/tls"
	"io"
	"net"
	"testing"
	"time"
)

// FuzzClientHelloParse throws arbitrary bytes at the pre-parser. The
// contract under fuzz: never panic, never mutate the input, and stay
// deterministic; on success the renderers must also hold up.
func FuzzClientHelloParse(f *testing.F) {
	for _, g := range golden {
		f.Add(loadHello(f, g.fixture))
	}
	f.Add([]byte{0x16, 0x03, 0x01, 0x00, 0x02, 0x01, 0x00})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		orig := bytes.Clone(data)
		hello, err := ParseClientHello(data)
		if !bytes.Equal(data, orig) {
			t.Fatal("parser mutated its input")
		}
		if err != nil {
			return
		}
		// Renderers must tolerate whatever the parser accepted.
		_ = hello.JA3()
		_ = hello.JA3Hash()
		_ = hello.JA4()
		_ = hello.String()
		_ = hello.SupportsH2()
		// Parsing is deterministic.
		again, err := ParseClientHello(data)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.JA3() != hello.JA3() || again.JA4() != hello.JA4() {
			t.Fatal("re-parse produced a different fingerprint")
		}
	})
}

// TestParserMatchesCryptoTLS captures a genuine crypto/tls ClientHello
// off the wire and checks the raw parser agrees with crypto/tls's own
// view of it (ciphers, SNI, ALPN, groups) — the "valid inputs" half of
// the fuzz contract, pinned with a real hello rather than fixtures.
func TestParserMatchesCryptoTLS(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	defer clientEnd.Close()
	defer serverEnd.Close()

	go func() {
		cfg := &tls.Config{
			ServerName: "cross.check.example",
			NextProtos: []string{"h2", "http/1.1"},
			MinVersion: tls.VersionTLS12,
		}
		c := tls.Client(clientEnd, cfg)
		_ = c.Handshake() // fails once the server side stops reading; irrelevant
	}()

	// Read the first TLS record raw.
	_ = serverEnd.SetReadDeadline(time.Now().Add(5 * time.Second))
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(serverEnd, hdr); err != nil {
		t.Fatalf("read record header: %v", err)
	}
	n := int(hdr[3])<<8 | int(hdr[4])
	payload := make([]byte, n)
	if _, err := io.ReadFull(serverEnd, payload); err != nil {
		t.Fatalf("read record payload: %v", err)
	}
	record := append(hdr, payload...)

	hello, err := ParseClientHello(record)
	if err != nil {
		t.Fatalf("ParseClientHello on a real Go hello: %v", err)
	}
	// crypto/tls's view of the same bytes.
	info := captureClientHelloInfo(t, record)

	if len(hello.CipherSuites) != len(info.CipherSuites) {
		t.Errorf("cipher count %d != crypto/tls %d", len(hello.CipherSuites), len(info.CipherSuites))
	}
	for i := range hello.CipherSuites {
		if i < len(info.CipherSuites) && hello.CipherSuites[i] != info.CipherSuites[i] {
			t.Errorf("cipher[%d] = %#04x != crypto/tls %#04x", i, hello.CipherSuites[i], info.CipherSuites[i])
		}
	}
	if hello.ServerName != info.ServerName {
		t.Errorf("SNI %q != crypto/tls %q", hello.ServerName, info.ServerName)
	}
	if len(hello.ALPN) != len(info.SupportedProtos) {
		t.Errorf("ALPN %v != crypto/tls %v", hello.ALPN, info.SupportedProtos)
	}
	if len(hello.Groups) != len(info.SupportedCurves) {
		t.Errorf("group count %d != crypto/tls %d", len(hello.Groups), len(info.SupportedCurves))
	}
}

// captureClientHelloInfo replays a raw ClientHello record into a tls.Server
// whose GetConfigForClient snapshot gives crypto/tls's parse of it.
func captureClientHelloInfo(t *testing.T, record []byte) *tls.ClientHelloInfo {
	t.Helper()
	in, out := net.Pipe()
	defer in.Close()
	defer out.Close()
	infoCh := make(chan *tls.ClientHelloInfo, 1)
	go func() {
		cfg := &tls.Config{
			GetConfigForClient: func(chi *tls.ClientHelloInfo) (*tls.Config, error) {
				// Copy the slices we compare; chi aliases handshake state.
				cp := *chi
				infoCh <- &cp
				return nil, nil
			},
		}
		_ = tls.Server(out, cfg).Handshake() // fails after capture: no cert
	}()
	if _, err := in.Write(record); err != nil {
		t.Fatalf("replay hello: %v", err)
	}
	select {
	case info := <-infoCh:
		return info
	case <-time.After(5 * time.Second):
		t.Fatal("crypto/tls never surfaced the ClientHello")
		return nil
	}
}
