package fingerprint

// Echo is the JSON document the testbed server's /fp endpoint returns:
// the server reading the client's own fingerprints back to it. TLS
// fields are empty over cleartext (prior-knowledge h2c) connections.
type Echo struct {
	// JA3/JA3Hash/JA4 fingerprint the TLS ClientHello.
	JA3     string `json:"ja3,omitempty"`
	JA3Hash string `json:"ja3_hash,omitempty"`
	JA4     string `json:"ja4,omitempty"`
	// SNI and ALPN echo the hello's server_name and negotiated protocol.
	SNI  string `json:"sni,omitempty"`
	ALPN string `json:"alpn,omitempty"`
	// JA4H fingerprints the request that fetched /fp.
	JA4H string `json:"ja4h"`
	// H2 is the connection's akamai-format behavioral fingerprint.
	H2 string `json:"h2"`
	// H2Detail is the structured form of H2.
	H2Detail *H2Fingerprint `json:"h2_detail,omitempty"`
}

// ClientObservation is one impersonated dial of a census target: which
// profile was worn, what the server echoed back, and a digest of the
// response body so observations can be compared across profiles.
type ClientObservation struct {
	// Profile is the impersonated client profile name.
	Profile string `json:"profile"`
	// OK reports the dial + fetch round trip succeeded.
	OK bool `json:"ok"`
	// Error classifies the failure when OK is false.
	Error string `json:"error,omitempty"`
	// H2 is the akamai fingerprint the server echoed via /fp ("" when
	// the target serves no /fp endpoint).
	H2 string `json:"h2,omitempty"`
	// ExpectedH2 is the akamai string a faithful impersonation should
	// have produced; H2 == ExpectedH2 means the server read us right.
	ExpectedH2 string `json:"expected_h2,omitempty"`
	// ServerSettings is the server's own SETTINGS (id:val;...) as seen
	// by this client — the probe for fingerprint-conditional behavior.
	ServerSettings string `json:"server_settings,omitempty"`
	// BodyDigest summarizes the response to GET / (status, length, and
	// a content hash), for cross-profile comparison.
	BodyDigest string `json:"body_digest,omitempty"`
}

// CensusResult is the fingerprint sweep verdict for one census site:
// did the server behave differently depending on which client it saw?
type CensusResult struct {
	// Clients holds one observation per impersonated profile.
	Clients []ClientObservation `json:"clients"`
	// EchoOK reports that at least one /fp echo parsed.
	EchoOK bool `json:"echo_ok"`
	// Differs reports that either the response digest or the server's
	// SETTINGS varied across client profiles — the census headline bit.
	Differs bool `json:"differs"`
}

// Observed recomputes EchoOK and Differs from Clients; call after
// appending all observations.
func (r *CensusResult) Observed() {
	r.EchoOK, r.Differs = false, false
	var digest, settings string
	seen := false
	for _, c := range r.Clients {
		if c.H2 != "" {
			r.EchoOK = true
		}
		if !c.OK {
			continue
		}
		if !seen {
			digest, settings, seen = c.BodyDigest, c.ServerSettings, true
			continue
		}
		if c.BodyDigest != digest || c.ServerSettings != settings {
			r.Differs = true
		}
	}
}
