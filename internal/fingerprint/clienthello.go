// Package fingerprint derives passive client fingerprints from the two
// places a client cannot help but reveal itself: the TLS ClientHello it
// sends before any application byte, and the first HTTP/2 frames it emits
// after the preface. It renders the canonical JA3, JA4, and JA4H strings
// (plus hashes) from the hello and request headers, and the "akamai"
// behavioral fingerprint from SETTINGS order/values, the initial
// connection WINDOW_UPDATE delta, PRIORITY frames, and pseudo-header
// order. The package is deliberately passive: it never mutates, replays,
// or delays the bytes it inspects.
package fingerprint

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ExtensionID is a TLS extension type code (IANA "TLS ExtensionType
// Values" registry, RFC 8446 §4.2).
type ExtensionID uint16

// TLS extension type codes the parser gives dedicated treatment, per the
// IANA ExtensionType registry.
const (
	ExtServerName           ExtensionID = 0
	ExtSupportedGroups      ExtensionID = 10
	ExtECPointFormats       ExtensionID = 11
	ExtSignatureAlgorithms  ExtensionID = 13
	ExtALPN                 ExtensionID = 16
	ExtSCT                  ExtensionID = 18
	ExtPadding              ExtensionID = 21
	ExtExtendedMasterSecret ExtensionID = 23
	ExtSessionTicket        ExtensionID = 35
	ExtPreSharedKey         ExtensionID = 41
	ExtSupportedVersions    ExtensionID = 43
	ExtPSKKeyExchangeModes  ExtensionID = 45
	ExtKeyShare             ExtensionID = 51
	ExtRenegotiationInfo    ExtensionID = 0xff01
)

// ClientHello is the parsed, order-preserving view of one TLS ClientHello.
// Every slice keeps the client's wire order, GREASE values included; the
// fingerprint renderers decide what to filter.
type ClientHello struct {
	// Version is the legacy_version field of the hello body.
	Version uint16
	// CipherSuites lists the offered cipher suites in order.
	CipherSuites []uint16
	// Extensions lists the extension type codes in order.
	Extensions []uint16
	// Groups is the supported_groups (née elliptic_curves) list.
	Groups []uint16
	// PointFormats is the ec_point_formats list.
	PointFormats []uint8
	// ALPN lists the offered application protocols in order.
	ALPN []string
	// SignatureAlgorithms is the signature_algorithms list in order.
	SignatureAlgorithms []uint16
	// SupportedVersions is the supported_versions list in order.
	SupportedVersions []uint16
	// ServerName is the SNI host_name, if the extension was present.
	ServerName string
}

// Parse errors. Callers that pre-parse live connections treat any error as
// "not fingerprintable" and carry on; nothing here is fatal to the
// handshake itself.
var (
	// ErrTruncated reports bytes that look like the prefix of a TLS
	// handshake but end before the ClientHello completes; callers that
	// stream may retry with more data.
	ErrTruncated    = errors.New("fingerprint: truncated TLS record")
	errNotHandshake = errors.New("fingerprint: not a TLS handshake record")
	errNotHello     = errors.New("fingerprint: not a ClientHello")
	errMalformed    = errors.New("fingerprint: malformed ClientHello")
)

const (
	recordTypeHandshake  = 0x16
	handshakeClientHello = 0x01
)

// IsGREASE reports whether v is a GREASE value (RFC 8701): both bytes
// equal and of the form 0xXa with X equal in both nibbles positions,
// i.e. 0x0a0a, 0x1a1a, ... 0xfafa.
func IsGREASE(v uint16) bool {
	return v&0x0f0f == 0x0a0a && byte(v>>8) == byte(v)
}

// ParseClientHello parses a ClientHello from data, which may be either one
// or more TLS records (first byte 0x16) or a bare handshake message (first
// byte 0x01). Fragmented handshakes spanning several records are
// reassembled. Trailing bytes after the hello are ignored. The returned
// ClientHello does not alias data.
func ParseClientHello(data []byte) (*ClientHello, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	var body []byte
	switch data[0] {
	case handshakeClientHello:
		body = data
	case recordTypeHandshake:
		var err error
		if body, err = reassembleHandshake(data); err != nil {
			return nil, err
		}
	default:
		return nil, errNotHandshake
	}
	return parseHelloBody(body)
}

// reassembleHandshake concatenates the payloads of consecutive handshake
// records until the first handshake message is complete.
func reassembleHandshake(data []byte) ([]byte, error) {
	var body []byte
	for len(data) > 0 {
		if len(data) < 5 {
			return nil, ErrTruncated
		}
		if data[0] != recordTypeHandshake {
			return nil, errNotHandshake
		}
		n := int(binary.BigEndian.Uint16(data[3:5]))
		if n == 0 || len(data) < 5+n {
			return nil, ErrTruncated
		}
		body = append(body, data[5:5+n]...)
		data = data[5+n:]
		if len(body) >= 4 {
			want := 4 + int(uint32(body[1])<<16|uint32(body[2])<<8|uint32(body[3]))
			if len(body) >= want {
				return body, nil
			}
		}
	}
	return nil, ErrTruncated
}

// cursor is a bounds-checked big-endian reader over the hello body. All
// take* methods report ok=false instead of panicking on truncation, which
// is what makes the parser safe to point at attacker bytes.
type cursor struct {
	b []byte
}

func (c *cursor) take(n int) ([]byte, bool) {
	if n < 0 || len(c.b) < n {
		return nil, false
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out, true
}

func (c *cursor) u8() (uint8, bool) {
	b, ok := c.take(1)
	if !ok {
		return 0, false
	}
	return b[0], true
}

func (c *cursor) u16() (uint16, bool) {
	b, ok := c.take(2)
	if !ok {
		return 0, false
	}
	return binary.BigEndian.Uint16(b), true
}

// vec returns the contents of a length-prefixed vector whose length field
// is lenBytes (1 or 2) wide.
func (c *cursor) vec(lenBytes int) ([]byte, bool) {
	var n int
	switch lenBytes {
	case 1:
		v, ok := c.u8()
		if !ok {
			return nil, false
		}
		n = int(v)
	case 2:
		v, ok := c.u16()
		if !ok {
			return nil, false
		}
		n = int(v)
	default:
		return nil, false
	}
	return c.take(n)
}

// parseHelloBody parses a complete handshake message known to start with
// the ClientHello type byte.
func parseHelloBody(body []byte) (*ClientHello, error) {
	c := cursor{body}
	typ, ok := c.u8()
	if !ok || typ != handshakeClientHello {
		return nil, errNotHello
	}
	lb, ok := c.take(3)
	if !ok {
		return nil, errMalformed
	}
	n := int(uint32(lb[0])<<16 | uint32(lb[1])<<8 | uint32(lb[2]))
	msg, ok := c.take(n)
	if !ok {
		return nil, errMalformed
	}
	c = cursor{msg}

	hello := &ClientHello{}
	if hello.Version, ok = c.u16(); !ok {
		return nil, errMalformed
	}
	if _, ok = c.take(32); !ok { // random
		return nil, errMalformed
	}
	if _, ok = c.vec(1); !ok { // legacy_session_id
		return nil, errMalformed
	}
	suites, ok := c.vec(2)
	if !ok || len(suites)%2 != 0 {
		return nil, errMalformed
	}
	for i := 0; i+1 < len(suites); i += 2 {
		hello.CipherSuites = append(hello.CipherSuites, binary.BigEndian.Uint16(suites[i:]))
	}
	if _, ok = c.vec(1); !ok { // legacy_compression_methods
		return nil, errMalformed
	}
	if len(c.b) == 0 {
		return hello, nil // SSLv3-style hello without extensions
	}
	exts, ok := c.vec(2)
	if !ok {
		return nil, errMalformed
	}
	if err := parseExtensions(hello, exts); err != nil {
		return nil, err
	}
	return hello, nil
}

// parseExtensions walks the extension list, recording type order and
// decoding the handful of extensions the fingerprints consume.
func parseExtensions(hello *ClientHello, exts []byte) error {
	c := cursor{exts}
	for len(c.b) > 0 {
		id, ok := c.u16()
		if !ok {
			return errMalformed
		}
		data, ok := c.vec(2)
		if !ok {
			return errMalformed
		}
		hello.Extensions = append(hello.Extensions, id)
		// Per-extension decode failures are deliberately tolerated: a
		// malformed inner vector still counts for extension order, which
		// is all JA3/JA4 need from unfamiliar extensions.
		switch ExtensionID(id) {
		case ExtServerName:
			hello.ServerName = parseSNI(data)
		case ExtSupportedGroups:
			hello.Groups = parseU16Vec(data)
		case ExtECPointFormats:
			hello.PointFormats = parseU8Vec(data)
		case ExtALPN:
			hello.ALPN = parseALPN(data)
		case ExtSignatureAlgorithms:
			hello.SignatureAlgorithms = parseU16Vec(data)
		case ExtSupportedVersions:
			hello.SupportedVersions = parseVersions(data)
		}
	}
	return nil
}

func parseSNI(data []byte) string {
	c := cursor{data}
	list, ok := c.vec(2)
	if !ok {
		return ""
	}
	c = cursor{list}
	for len(c.b) > 0 {
		typ, ok := c.u8()
		if !ok {
			return ""
		}
		name, ok := c.vec(2)
		if !ok {
			return ""
		}
		if typ == 0 { // host_name
			return string(name)
		}
	}
	return ""
}

func parseU16Vec(data []byte) []uint16 {
	c := cursor{data}
	list, ok := c.vec(2)
	if !ok || len(list)%2 != 0 {
		return nil
	}
	out := make([]uint16, 0, len(list)/2)
	for i := 0; i+1 < len(list); i += 2 {
		out = append(out, binary.BigEndian.Uint16(list[i:]))
	}
	return out
}

func parseU8Vec(data []byte) []uint8 {
	c := cursor{data}
	list, ok := c.vec(1)
	if !ok {
		return nil
	}
	out := make([]uint8, len(list))
	copy(out, list)
	return out
}

func parseALPN(data []byte) []string {
	c := cursor{data}
	list, ok := c.vec(2)
	if !ok {
		return nil
	}
	c = cursor{list}
	var out []string
	for len(c.b) > 0 {
		proto, ok := c.vec(1)
		if !ok {
			return out
		}
		out = append(out, string(proto))
	}
	return out
}

func parseVersions(data []byte) []uint16 {
	c := cursor{data}
	list, ok := c.vec(1)
	if !ok || len(list)%2 != 0 {
		return nil
	}
	out := make([]uint16, 0, len(list)/2)
	for i := 0; i+1 < len(list); i += 2 {
		out = append(out, binary.BigEndian.Uint16(list[i:]))
	}
	return out
}

// SupportsH2 reports whether the hello offered "h2" via ALPN.
func (h *ClientHello) SupportsH2() bool {
	for _, p := range h.ALPN {
		if p == "h2" {
			return true
		}
	}
	return false
}

// String summarizes the hello for logs.
func (h *ClientHello) String() string {
	return fmt.Sprintf("ClientHello{ver=%#04x ciphers=%d exts=%d sni=%q alpn=%v}",
		h.Version, len(h.CipherSuites), len(h.Extensions), h.ServerName, h.ALPN)
}
