package fingerprint

import (
	"strings"
	"testing"

	"h2scope/internal/hpack"
)

func requestFields(extra ...hpack.HeaderField) []hpack.HeaderField {
	base := []hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":authority", Value: "example.com"},
		{Name: ":scheme", Value: "https"},
		{Name: ":path", Value: "/"},
	}
	return append(base, extra...)
}

func TestJA4HShape(t *testing.T) {
	fp := JA4H(requestFields(
		hpack.HeaderField{Name: "user-agent", Value: "curl/8.5.0"},
		hpack.HeaderField{Name: "accept", Value: "*/*"},
	))
	parts := strings.Split(fp, "_")
	if len(parts) != 4 {
		t.Fatalf("JA4H = %s, want 4 _-separated parts", fp)
	}
	// ge + 20 + no cookie + no referer + 2 headers + no accept-language.
	if parts[0] != "ge20nn020000" {
		t.Errorf("JA4H a-part = %s, want ge20nn020000", parts[0])
	}
	if parts[2] != ja4EmptyHash || parts[3] != ja4EmptyHash {
		t.Errorf("cookieless JA4H = %s, want zeroed c/d parts", fp)
	}
}

func TestJA4HMarkersAndLanguage(t *testing.T) {
	fp := JA4H(requestFields(
		hpack.HeaderField{Name: "User-Agent", Value: "x"},
		hpack.HeaderField{Name: "Accept-Language", Value: "en-US,en;q=0.9"},
		hpack.HeaderField{Name: "Referer", Value: "https://other.example/"},
		hpack.HeaderField{Name: "Cookie", Value: "b=2; a=1"},
	))
	// POST-less GET, cookie + referer present, 2 counted headers
	// (user-agent, accept-language; cookie and referer excluded), "enus".
	if !strings.HasPrefix(fp, "ge20cr02enus_") {
		t.Errorf("JA4H = %s, want ge20cr02enus_ prefix", fp)
	}
	if strings.Contains(fp, ja4EmptyHash) {
		t.Errorf("JA4H = %s: cookie parts should be hashed, not zeroed", fp)
	}
}

// TestJA4HCookieOrderInsensitive: cookie names/pairs are sorted, so the
// same jar in different order yields the same fingerprint.
func TestJA4HCookieOrderInsensitive(t *testing.T) {
	a := JA4H(requestFields(hpack.HeaderField{Name: "cookie", Value: "b=2; a=1"}))
	b := JA4H(requestFields(hpack.HeaderField{Name: "cookie", Value: "a=1; b=2"}))
	if a != b {
		t.Errorf("cookie order changed JA4H: %s vs %s", a, b)
	}
}

// TestJA4HHeaderOrderSensitive: header order is identity, so swapping
// two headers must change the b-part.
func TestJA4HHeaderOrderSensitive(t *testing.T) {
	a := JA4H(requestFields(
		hpack.HeaderField{Name: "user-agent", Value: "x"},
		hpack.HeaderField{Name: "accept", Value: "*/*"},
	))
	b := JA4H(requestFields(
		hpack.HeaderField{Name: "accept", Value: "*/*"},
		hpack.HeaderField{Name: "user-agent", Value: "x"},
	))
	if a == b {
		t.Errorf("header order did not change JA4H: %s", a)
	}
}

func TestPrimaryLanguage(t *testing.T) {
	cases := map[string]string{
		"en-US,en;q=0.9": "enus",
		"ru":             "ru00",
		"":               "0000",
		"zh-Hans-CN":     "zhha",
		" fr-FR ":        "frfr",
	}
	for in, want := range cases {
		if got := primaryLanguage(in); got != want {
			t.Errorf("primaryLanguage(%q) = %q, want %q", in, got, want)
		}
	}
}
