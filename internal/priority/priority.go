// Package priority implements the HTTP/2 stream prioritization model of
// RFC 7540 section 5.3: the dependency tree, exclusive and non-exclusive
// (re)prioritization including the descendant-parent corner case, and a
// weighted scheduler a server can use to order DATA transmission.
//
// The paper's Algorithm 1 infers whether a remote server implements this
// machinery by observing response ordering; our server's priority-aware
// profiles use this package, and its FCFS profiles bypass it, reproducing
// the pass/fail split in Table III.
package priority

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// DefaultWeight is the wire-format default weight (16 effective, RFC 7540
// section 5.3.5 — wire value is effective weight minus one).
const DefaultWeight = 15

// ErrSelfDependency reports a stream declared dependent on itself, which
// RFC 7540 section 5.3.1 defines as a stream error of type PROTOCOL_ERROR.
var ErrSelfDependency = errors.New("priority: stream depends on itself")

// Param mirrors the prioritization fields of HEADERS and PRIORITY frames.
type Param struct {
	// StreamDep is the parent stream ID; 0 is the virtual root.
	StreamDep uint32
	// Exclusive makes the stream the sole dependency of its parent.
	Exclusive bool
	// Weight is the wire-format weight (0-255, effective weight 1-256).
	Weight uint8
}

type node struct {
	id       uint32
	weight   uint8
	parent   *node
	children []*node
}

func (n *node) removeChild(c *node) {
	for i, ch := range n.children {
		if ch == c {
			n.children = append(n.children[:i], n.children[i+1:]...)
			return
		}
	}
}

// isDescendantOf reports whether n sits strictly below anc.
func (n *node) isDescendantOf(anc *node) bool {
	for p := n.parent; p != nil; p = p.parent {
		if p == anc {
			return true
		}
	}
	return false
}

// Tree is an HTTP/2 stream dependency tree rooted at virtual stream 0.
// Tree is not safe for concurrent use; the owning connection serializes
// access.
type Tree struct {
	root  *node
	nodes map[uint32]*node
	// free recycles removed nodes so the steady-state open/close churn of
	// request streams does not allocate: Remove pushes, get pops. Child
	// slices are truncated, not released, so their capacity amortizes too.
	free []*node
}

// NewTree returns an empty dependency tree.
func NewTree() *Tree {
	root := &node{id: 0}
	return &Tree{
		root:  root,
		nodes: map[uint32]*node{0: root},
	}
}

// Len returns the number of streams in the tree, excluding the root.
func (t *Tree) Len() int { return len(t.nodes) - 1 }

// Contains reports whether stream id is in the tree.
func (t *Tree) Contains(id uint32) bool {
	_, ok := t.nodes[id]
	return ok
}

// get returns the node for id, creating an idle placeholder under the root
// when the stream is unknown (RFC 7540 section 5.3.4 allows dependencies on
// streams in any state). Removed nodes are recycled before new ones are
// allocated, keeping the per-request open/close cycle allocation-free.
func (t *Tree) get(id uint32) *node {
	if n, ok := t.nodes[id]; ok {
		return n
	}
	var n *node
	if len(t.free) > 0 {
		n = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		n.id, n.weight, n.parent = id, DefaultWeight, t.root
	} else {
		n = &node{id: id, weight: DefaultWeight, parent: t.root}
	}
	t.root.children = append(t.root.children, n)
	t.nodes[id] = n
	return n
}

// Add inserts stream id with the given prioritization, as carried by a
// HEADERS frame. Adding an existing stream reprioritizes it.
//
//h2:hotpath — every request stream passes through Add on HEADERS.
func (t *Tree) Add(id uint32, p Param) error {
	if id == 0 {
		return fmt.Errorf("priority: cannot add stream 0")
	}
	if p.StreamDep == id {
		return fmt.Errorf("%w: stream %d", ErrSelfDependency, id)
	}
	n := t.get(id)
	t.reparent(n, p)
	return nil
}

// Update reprioritizes stream id, as carried by a PRIORITY frame. Unknown
// streams are created idle first, per RFC 7540 section 5.3.4.
func (t *Tree) Update(id uint32, p Param) error {
	return t.Add(id, p)
}

// reparent implements RFC 7540 section 5.3.3.
func (t *Tree) reparent(n *node, p Param) {
	newParent := t.get(p.StreamDep)
	// If the new parent is currently a descendant of n, it is first moved
	// to be dependent on n's current parent, retaining its weight.
	if newParent.isDescendantOf(n) {
		newParent.parent.removeChild(newParent)
		newParent.parent = n.parent
		n.parent.children = append(n.parent.children, newParent)
	}
	n.parent.removeChild(n)
	if p.Exclusive {
		// n adopts all of newParent's current children.
		for _, c := range newParent.children {
			c.parent = n
		}
		n.children = append(n.children, newParent.children...)
		newParent.children = newParent.children[:0]
	}
	n.parent = newParent
	n.weight = p.Weight
	newParent.children = append(newParent.children, n)
}

// Remove closes stream id. Its children are reassigned to its parent,
// keeping their weights (a simplification of the proportional redistribution
// RFC 7540 section 5.3.4 suggests; ordering-relevant structure is preserved).
//
//h2:hotpath — every request stream passes through Remove on close.
func (t *Tree) Remove(id uint32) {
	n, ok := t.nodes[id]
	if !ok || id == 0 {
		return
	}
	n.parent.removeChild(n)
	for _, c := range n.children {
		c.parent = n.parent
		n.parent.children = append(n.parent.children, c)
	}
	delete(t.nodes, id)
	n.parent = nil
	n.children = n.children[:0]
	t.free = append(t.free, n)
}

// Parent returns the parent stream of id (0 for root-attached streams) and
// whether the stream exists.
func (t *Tree) Parent(id uint32) (uint32, bool) {
	n, ok := t.nodes[id]
	if !ok || n.parent == nil {
		return 0, ok
	}
	return n.parent.id, true
}

// Weight returns the wire-format weight of stream id.
func (t *Tree) Weight(id uint32) (uint8, bool) {
	n, ok := t.nodes[id]
	if !ok {
		return 0, false
	}
	return n.weight, true
}

// Children returns the stream IDs directly dependent on id, sorted.
func (t *Tree) Children(id uint32) []uint32 {
	n, ok := t.nodes[id]
	if !ok {
		return nil
	}
	out := make([]uint32, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c.id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Depth returns the number of edges between id and the root.
func (t *Tree) Depth(id uint32) (int, bool) {
	n, ok := t.nodes[id]
	if !ok {
		return 0, false
	}
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d, true
}

// Eligible returns, in deterministic order, the streams for which ready
// returns true and none of whose proper ancestors (other than the root) are
// also ready. Per RFC 7540 section 5.3.1, a dependent stream should only be
// allocated resources when its ancestors are closed or blocked.
func (t *Tree) Eligible(ready func(uint32) bool) []uint32 {
	return t.AppendEligible(nil, ready)
}

// AppendEligible is the allocation-free form of Eligible: it appends the
// eligible set to dst (sorted ascending) and returns the extended slice.
// Callers on the hot path pass a retained scratch slice truncated to zero.
//
//h2:hotpath
func (t *Tree) AppendEligible(dst []uint32, ready func(uint32) bool) []uint32 {
	for id, n := range t.nodes {
		if id == 0 || !ready(id) {
			continue
		}
		blocked := false
		for p := n.parent; p != nil && p.id != 0; p = p.parent {
			if ready(p.id) {
				blocked = true
				break
			}
		}
		if !blocked {
			dst = append(dst, id)
		}
	}
	sortIDs(dst)
	return dst
}

// sortIDs insertion-sorts a small ID slice in place. Eligible sets are tiny
// (bounded by concurrent ready streams), and unlike sort.Slice this keeps
// the comparison closure off the heap.
func sortIDs(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Validate checks structural invariants (used by property tests): every
// non-root node has a parent, parent/child links are symmetric, and the
// graph is acyclic.
func (t *Tree) Validate() error {
	for id, n := range t.nodes {
		if id == 0 {
			if n.parent != nil {
				return errors.New("priority: root has a parent")
			}
			continue
		}
		if n.parent == nil {
			return fmt.Errorf("priority: stream %d has no parent", id)
		}
		found := false
		for _, c := range n.parent.children {
			if c == n {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("priority: stream %d missing from parent %d child list", id, n.parent.id)
		}
		// Cycle check: walking up must reach the root within len(nodes) hops.
		hops := 0
		for p := n; p != nil; p = p.parent {
			if hops > len(t.nodes) {
				return fmt.Errorf("priority: cycle reachable from stream %d", id)
			}
			hops++
		}
	}
	return nil
}

// Scheduler orders transmission among ready streams using the dependency
// tree and smooth weighted round-robin among eligible siblings.
type Scheduler struct {
	tree   *Tree
	credit map[uint32]int64
	// elig is the retained scratch for the per-pick eligible set, so a pick
	// in steady state performs no heap allocation.
	elig []uint32
}

// NewScheduler returns a scheduler over tree. The tree may keep changing;
// the scheduler reads it on every pick.
func NewScheduler(tree *Tree) *Scheduler {
	return &Scheduler{
		tree:   tree,
		credit: make(map[uint32]int64),
	}
}

// Pick selects the next stream to transmit a quantum for, among streams for
// which ready returns true. It returns false when nothing is eligible.
//
// Selection is smooth weighted round-robin over the eligible set: each
// eligible stream earns credit equal to its effective weight, the stream
// with the highest credit wins (ties break toward the lowest stream ID),
// and the winner is charged the total weight of the round.
//
//h2:hotpath — runs once per egress quantum under load.
func (s *Scheduler) Pick(ready func(uint32) bool) (uint32, bool) {
	s.elig = s.tree.AppendEligible(s.elig[:0], ready)
	elig := s.elig
	if len(elig) == 0 {
		return 0, false
	}
	if len(elig) == 1 {
		return elig[0], true
	}
	var total int64
	for _, id := range elig {
		w, _ := s.tree.Weight(id)
		eff := int64(w) + 1
		s.credit[id] += eff
		total += eff
	}
	best := elig[0]
	for _, id := range elig[1:] {
		if s.credit[id] > s.credit[best] {
			best = id
		}
	}
	s.credit[best] -= total
	return best, true
}

// Ready returns the size of the eligible set without advancing scheduler
// state — the instrumentation hook behind the egress ready-stream histogram.
func (s *Scheduler) Ready(ready func(uint32) bool) int {
	s.elig = s.tree.AppendEligible(s.elig[:0], ready)
	return len(s.elig)
}

// Forget clears accumulated credit for a closed stream.
func (s *Scheduler) Forget(id uint32) { delete(s.credit, id) }

// String renders the tree as an indented outline, children sorted by ID —
// a debugging aid for Algorithm 1's reprioritization steps.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		if n.id == 0 {
			b.WriteString("root\n")
		} else {
			fmt.Fprintf(&b, "stream %d (weight %d)\n", n.id, int(n.weight)+1)
		}
		children := append([]*node(nil), n.children...)
		sort.Slice(children, func(i, j int) bool { return children[i].id < children[j].id })
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return b.String()
}
