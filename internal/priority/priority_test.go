package priority

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// Stream IDs for the paper's Figure 1 example. Letters map to odd client
// stream IDs in request order: A=1, B=3, C=5, D=7, E=9, F=11.
const (
	sA = 1
	sB = 3
	sC = 5
	sD = 7
	sE = 9
	sF = 11
)

// buildFigure1Tree installs the dependencies of the paper's Table I:
// A depends on the root; B, C, D depend on A; E on B; F on D.
func buildFigure1Tree(t *testing.T) *Tree {
	t.Helper()
	tr := NewTree()
	deps := []struct {
		id     uint32
		parent uint32
	}{
		{sA, 0}, {sB, sA}, {sC, sA}, {sD, sA}, {sE, sB}, {sF, sD},
	}
	for _, d := range deps {
		if err := tr.Add(d.id, Param{StreamDep: d.parent, Weight: 0}); err != nil {
			t.Fatalf("Add(%d dep %d): %v", d.id, d.parent, err)
		}
	}
	return tr
}

func checkParent(t *testing.T, tr *Tree, id, want uint32) {
	t.Helper()
	got, ok := tr.Parent(id)
	if !ok {
		t.Fatalf("stream %d not in tree", id)
	}
	if got != want {
		t.Errorf("parent(%d) = %d, want %d", id, got, want)
	}
}

func TestFigure1InitialTree(t *testing.T) {
	tr := buildFigure1Tree(t)
	checkParent(t, tr, sA, 0)
	checkParent(t, tr, sB, sA)
	checkParent(t, tr, sC, sA)
	checkParent(t, tr, sD, sA)
	checkParent(t, tr, sE, sB)
	checkParent(t, tr, sF, sD)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1ExclusiveReprioritization(t *testing.T) {
	// Table II row 1: PRIORITY{stream A, parent B, exclusive}. Figure 1(2):
	// B moves up to the root, A becomes B's sole child, and B's former child
	// E joins A's children alongside C and D.
	tr := buildFigure1Tree(t)
	if err := tr.Update(sA, Param{StreamDep: sB, Weight: 0, Exclusive: true}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	checkParent(t, tr, sB, 0)
	checkParent(t, tr, sA, sB)
	if got := tr.Children(sB); !reflect.DeepEqual(got, []uint32{sA}) {
		t.Errorf("children(B) = %v, want [A] only (exclusive)", got)
	}
	if got := tr.Children(sA); !reflect.DeepEqual(got, []uint32{sC, sD, sE}) {
		t.Errorf("children(A) = %v, want [C D E]", got)
	}
	checkParent(t, tr, sF, sD)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1NonExclusiveReprioritization(t *testing.T) {
	// Table II row 2: PRIORITY{stream A, parent B, non-exclusive}.
	// Figure 1(3): B moves up to the root; A becomes a sibling of E under B;
	// C and D stay under A; F stays under D.
	tr := buildFigure1Tree(t)
	if err := tr.Update(sA, Param{StreamDep: sB, Weight: 0}); err != nil {
		t.Fatalf("Update: %v", err)
	}
	checkParent(t, tr, sB, 0)
	checkParent(t, tr, sA, sB)
	checkParent(t, tr, sE, sB)
	if got := tr.Children(sB); !reflect.DeepEqual(got, []uint32{sA, sE}) {
		t.Errorf("children(B) = %v, want [A E]", got)
	}
	if got := tr.Children(sA); !reflect.DeepEqual(got, []uint32{sC, sD}) {
		t.Errorf("children(A) = %v, want [C D]", got)
	}
	checkParent(t, tr, sF, sD)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfDependencyRejected(t *testing.T) {
	tr := NewTree()
	if err := tr.Add(5, Param{StreamDep: 0}); err != nil {
		t.Fatal(err)
	}
	err := tr.Update(5, Param{StreamDep: 5})
	if !errors.Is(err, ErrSelfDependency) {
		t.Fatalf("Update self-dependency = %v, want ErrSelfDependency", err)
	}
	// The failed update must not corrupt the tree.
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	checkParent(t, tr, 5, 0)
}

func TestDependencyOnUnknownStreamCreatesPlaceholder(t *testing.T) {
	tr := NewTree()
	if err := tr.Add(3, Param{StreamDep: 99}); err != nil {
		t.Fatal(err)
	}
	checkParent(t, tr, 3, 99)
	checkParent(t, tr, 99, 0)
	if w, _ := tr.Weight(99); w != DefaultWeight {
		t.Errorf("placeholder weight = %d, want %d", w, DefaultWeight)
	}
}

func TestRemoveReassignsChildren(t *testing.T) {
	tr := buildFigure1Tree(t)
	tr.Remove(sB)
	checkParent(t, tr, sE, sA) // E inherits B's parent
	if tr.Contains(sB) {
		t.Error("removed stream still present")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDepth(t *testing.T) {
	tr := buildFigure1Tree(t)
	for _, tc := range []struct {
		id   uint32
		want int
	}{{sA, 1}, {sB, 2}, {sE, 3}, {sF, 3}} {
		if d, ok := tr.Depth(tc.id); !ok || d != tc.want {
			t.Errorf("Depth(%d) = %d,%v, want %d,true", tc.id, d, ok, tc.want)
		}
	}
}

func TestEligibleRespectsAncestors(t *testing.T) {
	tr := buildFigure1Tree(t)
	all := map[uint32]bool{sA: true, sB: true, sC: true, sD: true, sE: true, sF: true}
	ready := func(id uint32) bool { return all[id] }

	// With everything ready, only A (the sole top) is eligible.
	if got := tr.Eligible(ready); !reflect.DeepEqual(got, []uint32{sA}) {
		t.Errorf("Eligible = %v, want [A]", got)
	}
	// With A done, B, C, D become eligible.
	all[sA] = false
	if got := tr.Eligible(ready); !reflect.DeepEqual(got, []uint32{sB, sC, sD}) {
		t.Errorf("Eligible = %v, want [B C D]", got)
	}
	// With B also blocked, its child E becomes eligible.
	all[sB] = false
	if got := tr.Eligible(ready); !reflect.DeepEqual(got, []uint32{sC, sD, sE}) {
		t.Errorf("Eligible = %v, want [C D E]", got)
	}
}

func TestSchedulerDrainsParentFirst(t *testing.T) {
	tr := buildFigure1Tree(t)
	sched := NewScheduler(tr)
	remaining := map[uint32]int{sA: 2, sB: 2, sE: 1}
	ready := func(id uint32) bool { return remaining[id] > 0 }

	var order []uint32
	for {
		id, ok := sched.Pick(ready)
		if !ok {
			break
		}
		order = append(order, id)
		remaining[id]--
	}
	want := []uint32{sA, sA, sB, sB, sE}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("schedule order = %v, want %v", order, want)
	}
}

func TestSchedulerWeightedShares(t *testing.T) {
	// Two siblings with wire weights 199 (effective 200) and 49 (effective
	// 50) should be served roughly 4:1.
	tr := NewTree()
	if err := tr.Add(1, Param{StreamDep: 0, Weight: 199}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(3, Param{StreamDep: 0, Weight: 49}); err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(tr)
	counts := map[uint32]int{}
	ready := func(uint32) bool { return true }
	for i := 0; i < 250; i++ {
		id, ok := sched.Pick(ready)
		if !ok {
			t.Fatal("Pick returned false with ready streams")
		}
		counts[id]++
	}
	if counts[1] != 200 || counts[3] != 50 {
		t.Errorf("quanta = %v, want map[1:200 3:50]", counts)
	}
}

func TestSchedulerSingleStreamFastPath(t *testing.T) {
	tr := NewTree()
	if err := tr.Add(7, Param{}); err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(tr)
	id, ok := sched.Pick(func(id uint32) bool { return id == 7 })
	if !ok || id != 7 {
		t.Fatalf("Pick = %d,%v, want 7,true", id, ok)
	}
	if _, ok := sched.Pick(func(uint32) bool { return false }); ok {
		t.Error("Pick with nothing ready returned true")
	}
}

func TestRFC533DescendantParentExample(t *testing.T) {
	// RFC 7540 section 5.3.3's own example: x→A→{B,C}, C→{D,E}, F under D.
	// Reprioritizing A to depend on D first moves D up to A's old parent.
	tr := NewTree()
	mustAdd := func(id uint32, p Param) {
		t.Helper()
		if err := tr.Add(id, p); err != nil {
			t.Fatal(err)
		}
	}
	const (
		a, b, c, d, e, f = 1, 3, 5, 7, 9, 11
	)
	mustAdd(a, Param{StreamDep: 0})
	mustAdd(b, Param{StreamDep: a})
	mustAdd(c, Param{StreamDep: a})
	mustAdd(d, Param{StreamDep: c})
	mustAdd(e, Param{StreamDep: c})
	mustAdd(f, Param{StreamDep: d})

	// Non-exclusive: D moves to the root; A becomes D's child; F remains
	// D's child; B, C stay under A; E stays under C.
	if err := tr.Update(a, Param{StreamDep: d}); err != nil {
		t.Fatal(err)
	}
	checkParent(t, tr, d, 0)
	checkParent(t, tr, a, d)
	checkParent(t, tr, f, d)
	checkParent(t, tr, b, a)
	checkParent(t, tr, c, a)
	checkParent(t, tr, e, c)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRFC533DescendantParentExclusive(t *testing.T) {
	tr := NewTree()
	mustAdd := func(id uint32, p Param) {
		t.Helper()
		if err := tr.Add(id, p); err != nil {
			t.Fatal(err)
		}
	}
	const (
		a, b, c, d, e, f = 1, 3, 5, 7, 9, 11
	)
	mustAdd(a, Param{StreamDep: 0})
	mustAdd(b, Param{StreamDep: a})
	mustAdd(c, Param{StreamDep: a})
	mustAdd(d, Param{StreamDep: c})
	mustAdd(e, Param{StreamDep: c})
	mustAdd(f, Param{StreamDep: d})

	// Exclusive: as above, but A adopts D's previous children (F).
	if err := tr.Update(a, Param{StreamDep: d, Exclusive: true}); err != nil {
		t.Fatal(err)
	}
	checkParent(t, tr, d, 0)
	checkParent(t, tr, a, d)
	if got := tr.Children(d); !reflect.DeepEqual(got, []uint32{a}) {
		t.Errorf("children(D) = %v, want [A]", got)
	}
	checkParent(t, tr, f, a)
	checkParent(t, tr, b, a)
	checkParent(t, tr, c, a)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeInvariantsUnderRandomOps(t *testing.T) {
	// Property-style fuzzing of Add/Update/Remove with a seeded RNG: the
	// tree must satisfy Validate after every operation.
	rng := rand.New(rand.NewSource(42))
	tr := NewTree()
	ids := []uint32{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}
	for op := 0; op < 5000; op++ {
		id := ids[rng.Intn(len(ids))]
		switch rng.Intn(3) {
		case 0, 1:
			dep := uint32(0)
			if rng.Intn(2) == 0 {
				dep = ids[rng.Intn(len(ids))]
			}
			if dep == id {
				continue
			}
			err := tr.Update(id, Param{
				StreamDep: dep,
				Exclusive: rng.Intn(2) == 0,
				Weight:    uint8(rng.Intn(256)),
			})
			if err != nil {
				t.Fatalf("op %d: Update(%d dep %d): %v", op, id, dep, err)
			}
		case 2:
			tr.Remove(id)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
}

func TestTreeString(t *testing.T) {
	tr := buildFigure1Tree(t)
	out := tr.String()
	for _, want := range []string{"root", "stream 1", "stream 11 (weight 1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	// Depth: E (stream 9, child of B=3, child of A=1) is indented 3 levels.
	if !strings.Contains(out, "      stream 9") {
		t.Errorf("stream 9 not at depth 3:\n%s", out)
	}
}

func TestEligibleInvariantUnderRandomTrees(t *testing.T) {
	// Property: no eligible stream has a ready proper ancestor, and every
	// ready stream is either eligible or has a ready ancestor.
	rng := rand.New(rand.NewSource(99))
	ids := []uint32{1, 3, 5, 7, 9, 11, 13, 15}
	for trial := 0; trial < 300; trial++ {
		tr := NewTree()
		for _, id := range ids {
			dep := uint32(0)
			if rng.Intn(2) == 0 {
				dep = ids[rng.Intn(len(ids))]
			}
			if dep == id {
				dep = 0
			}
			if err := tr.Add(id, Param{StreamDep: dep, Exclusive: rng.Intn(2) == 0, Weight: uint8(rng.Intn(256))}); err != nil {
				t.Fatal(err)
			}
		}
		readySet := map[uint32]bool{}
		for _, id := range ids {
			readySet[id] = rng.Intn(2) == 0
		}
		ready := func(id uint32) bool { return readySet[id] }
		elig := tr.Eligible(ready)
		isElig := map[uint32]bool{}
		for _, id := range elig {
			isElig[id] = true
			if !readySet[id] {
				t.Fatalf("trial %d: eligible %d not ready", trial, id)
			}
			p, _ := tr.Parent(id)
			for p != 0 {
				if readySet[p] {
					t.Fatalf("trial %d: eligible %d has ready ancestor %d", trial, id, p)
				}
				p, _ = tr.Parent(p)
			}
		}
		for _, id := range ids {
			if !readySet[id] || isElig[id] {
				continue
			}
			hasReadyAncestor := false
			p, _ := tr.Parent(id)
			for p != 0 {
				if readySet[p] {
					hasReadyAncestor = true
					break
				}
				p, _ = tr.Parent(p)
			}
			if !hasReadyAncestor {
				t.Fatalf("trial %d: ready %d neither eligible nor blocked", trial, id)
			}
		}
	}
}

// TestPickZeroAlloc pins the steady-state scheduler pick at zero heap
// allocations: after the scratch eligible slice and credit map warm up, a
// full smooth-WRR round over several ready streams must not allocate.
func TestPickZeroAlloc(t *testing.T) {
	tr := NewTree()
	for _, id := range []uint32{1, 3, 5, 7} {
		if err := tr.Add(id, Param{Weight: uint8(id * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	s := NewScheduler(tr)
	ready := func(uint32) bool { return true }
	// Warm the scratch slice and credit map.
	for i := 0; i < 8; i++ {
		s.Pick(ready)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := s.Pick(ready); !ok {
			t.Fatal("no stream picked")
		}
	})
	if allocs != 0 {
		t.Fatalf("Pick allocates %.1f times per op, want 0", allocs)
	}
}

// TestAddRemoveZeroAllocSteadyState pins the per-request stream churn —
// Add on HEADERS, Remove on close — at zero allocations once the node
// freelist is warm, even as stream IDs keep increasing like a real
// connection's do.
func TestAddRemoveZeroAllocSteadyState(t *testing.T) {
	tr := NewTree()
	id := uint32(1)
	// Warm the freelist and map buckets with a burst of concurrent streams.
	for i := 0; i < 32; i++ {
		if err := tr.Add(id, Param{Weight: DefaultWeight}); err != nil {
			t.Fatal(err)
		}
		id += 2
	}
	for rm := uint32(1); rm < id; rm += 2 {
		tr.Remove(rm)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := tr.Add(id, Param{Weight: DefaultWeight}); err != nil {
			t.Fatal(err)
		}
		tr.Remove(id)
		id += 2
	})
	if allocs != 0 {
		t.Fatalf("Add+Remove allocates %.1f times per op, want 0", allocs)
	}
	if tr.Len() != 0 {
		t.Fatalf("tree left with %d streams, want 0", tr.Len())
	}
}

// TestNodeRecycling checks that a removed stream's node is reused for the
// next added stream and carries no stale state across the recycle.
func TestNodeRecycling(t *testing.T) {
	tr := NewTree()
	if err := tr.Add(1, Param{Weight: 200}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(3, Param{StreamDep: 1, Weight: 100}); err != nil {
		t.Fatal(err)
	}
	old := tr.nodes[3]
	tr.Remove(3)
	tr.Remove(1)
	if err := tr.Add(5, Param{}); err != nil {
		t.Fatal(err)
	}
	n := tr.nodes[5]
	if n != old && n != tr.nodes[0] {
		// Either recycled node is acceptable; just require recycling happened.
		if len(tr.free) == 2 {
			t.Fatal("freelist untouched: Add did not recycle a node")
		}
	}
	if n.weight != 0 || n.parent != tr.root || len(n.children) != 0 {
		t.Fatalf("recycled node has stale state: weight=%d parent=%v children=%d",
			n.weight, n.parent.id, len(n.children))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
