package store_test

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"h2scope/internal/attack"
	"h2scope/internal/core"
	"h2scope/internal/fingerprint"
	"h2scope/internal/netsim"
	"h2scope/internal/population"
	"h2scope/internal/server"
	"h2scope/internal/store"
)

// liveReport probes one emulated server so the stored record carries a
// real battery result.
func liveReport(t *testing.T, p server.Profile) *core.Report {
	t.Helper()
	srv := server.New(p, server.DefaultSite("store.example"))
	l := netsim.NewListener("store")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)
	cfg := core.DefaultConfig("store.example")
	cfg.QuietWindow = 10 * time.Millisecond
	r, err := core.NewProber(core.DialerFunc(func() (net.Conn, error) { return l.Dial() }), cfg).Run()
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	return r
}

func TestWriteReadRoundTrip(t *testing.T) {
	report := liveReport(t, server.NginxProfile())
	var buf bytes.Buffer
	w := store.NewWriter(&buf)
	rec := &store.Record{
		Domain:     "store.example",
		Epoch:      "1st Exp. (Jul 2016)",
		ServerName: report.Settings.ServerHeader,
		ScannedAt:  time.Date(2016, 7, 5, 12, 0, 0, 0, time.UTC),
		Report:     report,
	}
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Observations serialize as their Table III strings.
	if !strings.Contains(buf.String(), `"ignore"`) {
		t.Errorf("serialized record missing observation string:\n%s", buf.String())
	}

	records, err := store.Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(records) != 1 {
		t.Fatalf("records = %d, want 1", len(records))
	}
	got := records[0]
	if got.Domain != "store.example" || got.ServerName != "nginx/1.9.15" {
		t.Errorf("record = %+v", got)
	}
	if got.Report == nil || got.Report.HPACK == nil {
		t.Fatal("report lost in round trip")
	}
	if got.Report.HPACK.Ratio < 0.99 {
		t.Errorf("HPACK ratio = %v, want ~1 for nginx", got.Report.HPACK.Ratio)
	}
	if got.Report.PriorityVerdict() != "fail" {
		t.Errorf("priority verdict = %q after round trip", got.Report.PriorityVerdict())
	}
}

func TestConcurrentAppends(t *testing.T) {
	var buf bytes.Buffer
	w := store.NewWriter(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = w.Append(&store.Record{Domain: "d", ScannedAt: time.Unix(int64(i), 0)})
		}(i)
	}
	wg.Wait()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	records, err := store.Read(&buf)
	if err != nil {
		t.Fatalf("Read after concurrent appends: %v", err)
	}
	if len(records) != 32 {
		t.Fatalf("records = %d, want 32", len(records))
	}
}

func TestReadMalformed(t *testing.T) {
	if _, err := store.Read(strings.NewReader("{\"domain\":\"a\"}\nnot-json\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

func TestSummarize(t *testing.T) {
	reports := []*core.Report{
		liveReport(t, server.NginxProfile()),
		liveReport(t, server.ApacheProfile()),
	}
	records := []store.Record{
		{Domain: "a", ServerName: "nginx/1.9.15", Report: reports[0]},
		{Domain: "b", ServerName: "Apache/2.4.23", Report: reports[1]},
		{Domain: "c", ServerName: "nginx/1.9.15"}, // report lost
	}
	s := store.Summarize(records)
	if s.Records != 3 {
		t.Errorf("Records = %d", s.Records)
	}
	if s.ServerNames["nginx/1.9.15"] != 2 {
		t.Errorf("nginx count = %d, want 2", s.ServerNames["nginx/1.9.15"])
	}
	if s.PriorityPass != 1 {
		t.Errorf("PriorityPass = %d, want 1 (apache only)", s.PriorityPass)
	}
	if s.PushSupported != 1 {
		t.Errorf("PushSupported = %d, want 1", s.PushSupported)
	}
	if s.HPACKSupportStar != 1 {
		t.Errorf("HPACKSupportStar = %d, want 1 (nginx)", s.HPACKSupportStar)
	}
}

func TestAnalyzeStoredScan(t *testing.T) {
	// End-to-end: scan a population sample, persist it, read it back, and
	// re-derive the census aggregates offline.
	pop := population.Generate(population.EpochJul2016, 0.002, 19)
	sum, err := population.Scan(pop, population.ScanOptions{SampleSize: 20, Parallelism: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := store.NewWriter(&buf)
	for _, res := range sum.Results {
		name := ""
		if res.Report != nil && res.Report.Settings != nil {
			name = res.Report.Settings.ServerHeader
		}
		if err := w.Append(&store.Record{
			Domain:     res.Spec.Domain,
			ServerName: name,
			ScannedAt:  time.Unix(0, 0),
			Report:     res.Report,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	records, err := store.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := store.Analyze(records)
	if a.Records != 20 {
		t.Fatalf("Records = %d, want 20", a.Records)
	}
	// Offline aggregates must equal the live scan's.
	if got := a.TinyWindow[core.TinyWindowOneByte]; got != sum.TinyOneByte {
		t.Errorf("one-byte = %d, live %d", got, sum.TinyOneByte)
	}
	if got := a.TinyWindow[core.TinyWindowNothing]; got != sum.TinySilent {
		t.Errorf("silent = %d, live %d", got, sum.TinySilent)
	}
	if a.ZeroWindowHeadersOK != sum.ZeroWindowHeadersOK {
		t.Errorf("zero-window headers = %d, live %d", a.ZeroWindowHeadersOK, sum.ZeroWindowHeadersOK)
	}
	if a.PriorityLast != sum.PriorityLast || a.PriorityBoth != sum.PriorityBoth {
		t.Errorf("priority = %d/%d, live %d/%d", a.PriorityLast, a.PriorityBoth, sum.PriorityLast, sum.PriorityBoth)
	}
	if a.PushSites != sum.PushSites {
		t.Errorf("push = %d, live %d", a.PushSites, sum.PushSites)
	}
	if len(a.HPACKRatios) == 0 || len(a.PingRTTsMillis) == 0 {
		t.Error("missing HPACK or PING samples")
	}
	if tops := a.TopServers(1); len(tops) == 0 {
		t.Error("no server rows")
	}
	if out := a.String(); !strings.Contains(out, "offline analysis of 20") {
		t.Errorf("rendering:\n%s", out)
	}
}

// TestRobustnessRoundTripAndAnalyze pins the robustness column: a stored
// Score survives the JSON round trip, Analyze folds it into the offline
// aggregates, and the rendered report mentions it.
func TestRobustnessRoundTripAndAnalyze(t *testing.T) {
	score := &attack.Score{
		Verdicts: map[attack.Kind]attack.Verdict{
			attack.KindRapidReset: attack.VerdictSurvived,
			attack.KindHPACKBomb:  attack.VerdictDegraded,
		},
		Survived: 1,
		Total:    2,
		Value:    0.75,
	}
	var buf bytes.Buffer
	w := store.NewWriter(&buf)
	recs := []*store.Record{
		{Domain: "robust.example", ScannedAt: time.Unix(0, 0), Robustness: score},
		{Domain: "plain.example", ScannedAt: time.Unix(0, 0)},
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"robustness"`) {
		t.Errorf("serialized record missing robustness field:\n%s", buf.String())
	}
	if strings.Count(buf.String(), `"robustness"`) != 1 {
		t.Errorf("robustness field not omitted when nil:\n%s", buf.String())
	}

	records, err := store.Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	got := records[0].Robustness
	if got == nil {
		t.Fatal("robustness score lost in round trip")
	}
	if got.Value != 0.75 || got.Survived != 1 || got.Total != 2 {
		t.Errorf("score = %+v, want value 0.75 survived 1 total 2", got)
	}
	if got.Verdicts[attack.KindHPACKBomb] != attack.VerdictDegraded {
		t.Errorf("verdicts = %v", got.Verdicts)
	}
	if records[1].Robustness != nil {
		t.Errorf("plain record gained a robustness score: %+v", records[1].Robustness)
	}

	a := store.Analyze(records)
	if len(a.RobustnessScores) != 1 || a.RobustnessScores[0] != 0.75 {
		t.Errorf("RobustnessScores = %v, want [0.75]", a.RobustnessScores)
	}
	if a.RobustnessVerdicts["rapid-reset/survived"] != 1 ||
		a.RobustnessVerdicts["hpack-bomb/degraded"] != 1 {
		t.Errorf("RobustnessVerdicts = %v", a.RobustnessVerdicts)
	}
	if out := a.String(); !strings.Contains(out, "robustness: 1 sites scored, mean 0.75") {
		t.Errorf("analysis report missing robustness line:\n%s", out)
	}
}

// TestFingerprintRoundTripAndAnalyze pins the fingerprint column: a stored
// impersonation sweep survives the JSON round trip, Analyze folds it into
// the offline aggregates, and the rendered report mentions it.
func TestFingerprintRoundTripAndAnalyze(t *testing.T) {
	sweep := &fingerprint.CensusResult{
		Clients: []fingerprint.ClientObservation{
			{Profile: "curl", OK: true, H2: "3:100|0|0|m,p,s,a", ExpectedH2: "3:100|0|0|m,p,s,a",
				ServerSettings: "3:100;4:65535", BodyDigest: "200:12:abcdef"},
			{Profile: "chrome", OK: true, H2: "1:65536|0|0|m,a,s,p", ExpectedH2: "1:65536|0|0|m,a,s,p",
				ServerSettings: "3:100;4:65535", BodyDigest: "200:99:123456"},
		},
	}
	sweep.Observed()
	if !sweep.EchoOK || !sweep.Differs {
		t.Fatalf("fixture sweep = echo %v differs %v, want true/true", sweep.EchoOK, sweep.Differs)
	}
	var buf bytes.Buffer
	w := store.NewWriter(&buf)
	recs := []*store.Record{
		{Domain: "fp.example", ScannedAt: time.Unix(0, 0), Fingerprint: sweep},
		{Domain: "plain.example", ScannedAt: time.Unix(0, 0)},
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), `"fingerprint"`) != 1 {
		t.Errorf("fingerprint field not serialized exactly once:\n%s", buf.String())
	}

	records, err := store.Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	got := records[0].Fingerprint
	if got == nil {
		t.Fatal("fingerprint sweep lost in round trip")
	}
	if !got.EchoOK || !got.Differs || len(got.Clients) != 2 {
		t.Errorf("sweep = %+v, want 2 clients, echo, differs", got)
	}
	if got.Clients[1].H2 != "1:65536|0|0|m,a,s,p" || got.Clients[1].BodyDigest != "200:99:123456" {
		t.Errorf("chrome observation mangled: %+v", got.Clients[1])
	}
	if records[1].Fingerprint != nil {
		t.Errorf("plain record gained a sweep: %+v", records[1].Fingerprint)
	}

	a := store.Analyze(records)
	if a.FingerprintSites != 1 || a.FingerprintEcho != 1 || a.FingerprintDiffers != 1 {
		t.Errorf("analysis = %d/%d/%d, want 1/1/1",
			a.FingerprintSites, a.FingerprintEcho, a.FingerprintDiffers)
	}
	if out := a.String(); !strings.Contains(out, "fingerprint: 1 sites swept / 1 echoed /fp / 1 served by client") {
		t.Errorf("rendering missing fingerprint line:\n%s", out)
	}
}
