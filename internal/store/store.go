// Package store persists scan results. The paper's H2Scope "stores the
// request and the response into a database for further study" (Section
// IV-B); the reproduction's equivalent is an append-only JSON-lines store
// of per-site probe reports, which downstream analysis (or a re-run of the
// census tables) can read back without re-scanning.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"h2scope/internal/attack"
	"h2scope/internal/core"
	"h2scope/internal/fingerprint"
	"h2scope/internal/metrics"
	"h2scope/internal/scan"
)

// Record is one probed site's persisted result.
type Record struct {
	// Domain is the site's authority.
	Domain string `json:"domain"`
	// Epoch labels the measurement campaign (e.g. "1st Exp. (Jul 2016)").
	Epoch string `json:"epoch,omitempty"`
	// ServerName is the observed "server" header, duplicated out of the
	// report for cheap aggregation.
	ServerName string `json:"serverName,omitempty"`
	// ScannedAt is when the probe battery ran.
	ScannedAt time.Time `json:"scannedAt"`
	// Report is the full H2Scope battery result; nil when the probe failed
	// before producing anything.
	Report *core.Report `json:"report"`
	// Outcome, ErrorKind, Error, and Attempts describe how the scan engine
	// fared: "ok" sites omit the error fields, failed sites keep their
	// classified kind so offline analysis can report coverage honestly.
	Outcome   string `json:"outcome,omitempty"`
	ErrorKind string `json:"errorKind,omitempty"`
	Error     string `json:"error,omitempty"`
	Attempts  int    `json:"attempts,omitempty"`
	// TraceFile points at the site's exported frame-level trace (JSONL,
	// rendered by cmd/h2trace) when the scan ran with tracing enabled.
	TraceFile string `json:"traceFile,omitempty"`
	// Robustness is the site's adversarial-battery score when the scan ran
	// the attack battery (see internal/attack).
	Robustness *attack.Score `json:"robustness,omitempty"`
	// Fingerprint is the site's impersonation-sweep verdict when the scan
	// ran the fingerprint census (see internal/fingerprint).
	Fingerprint *fingerprint.CensusResult `json:"fingerprint,omitempty"`
	// Stats marks a scan-summary trailer record: one per scan run, holding
	// the engine's final counter snapshot instead of a per-site report.
	Stats *scan.Stats `json:"stats,omitempty"`
	// Metrics, set only on stats trailers, embeds the run's final metrics
	// registry snapshot (the same shape the live /metrics.json endpoint
	// serves), so offline analysis sees the process-level instruments too.
	Metrics []metrics.MetricSnapshot `json:"metrics,omitempty"`
}

// IsStatsTrailer reports whether the record is a scan-summary trailer
// rather than a per-site result.
func (r *Record) IsStatsTrailer() bool { return r.Stats != nil && r.Report == nil }

// Writer appends records to an underlying stream as JSON lines. It is safe
// for concurrent use (scanner workers share one Writer).
type Writer struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter returns a Writer appending to w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Append writes one record.
func (w *Writer) Append(rec *Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.enc.Encode(rec); err != nil {
		return fmt.Errorf("store: encoding record for %s: %w", rec.Domain, err)
	}
	return nil
}

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// Read decodes all records from a JSON-lines stream.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("store: decoding record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// Summarize aggregates stored records into the paper-style buckets; it is
// the offline counterpart of a live scan summary.
type Summary struct {
	Records     int
	ServerNames map[string]int
	// PriorityPass counts reports whose Algorithm 1 verdict is "pass".
	PriorityPass int
	// PushSupported counts reports that saw PUSH_PROMISE.
	PushSupported int
	// HPACKSupportStar counts "support*" header-compression verdicts.
	HPACKSupportStar int
}

// Summarize scans the records once.
func Summarize(records []Record) *Summary {
	s := &Summary{ServerNames: make(map[string]int)}
	for i := range records {
		rec := &records[i]
		if rec.IsStatsTrailer() {
			continue
		}
		s.Records++
		if rec.ServerName != "" {
			s.ServerNames[rec.ServerName]++
		}
		r := rec.Report
		if r == nil {
			continue
		}
		if r.PriorityVerdict() == "pass" {
			s.PriorityPass++
		}
		if r.PushVerdict() == "yes" {
			s.PushSupported++
		}
		if r.HeaderCompressionVerdict() == "support*" {
			s.HPACKSupportStar++
		}
	}
	return s
}
