package store

import (
	"fmt"
	"sort"
	"strings"

	"h2scope/internal/core"
	"h2scope/internal/scan"
	"h2scope/internal/stats"
)

// Analysis re-derives the paper's census aggregates offline, from persisted
// scan records instead of a live scan — the "further study" step that
// Section IV-B's database exists for. Counts here are measurement-backed:
// they come from the stored probe reports.
type Analysis struct {
	// Records is the number of analyzable records (with reports).
	Records int
	// ServerNames is the Table IV histogram.
	ServerNames map[string]int
	// TinyWindow buckets Section V-D.1.
	TinyWindow map[core.TinyWindowClass]int
	// ZeroWindowHeadersOK counts Section V-D.2 compliance.
	ZeroWindowHeadersOK int
	// ZeroWUStream and LargeWUConn bucket the WINDOW_UPDATE reactions.
	ZeroWUStream map[core.Observation]int
	LargeWUConn  map[core.Observation]int
	// PriorityLast/First/Both are Section V-E.1 rule counts.
	PriorityLast, PriorityFirst, PriorityBoth int
	// SelfDep buckets Section V-E.2.
	SelfDep map[core.Observation]int
	// PushSites counts PUSH_PROMISE senders; PushDomains lists them.
	PushSites   int
	PushDomains []string
	// HPACKRatios holds measured compression ratios (r <= 1, the paper's
	// filter).
	HPACKRatios []float64
	// RobustnessScores holds per-site adversarial-battery scores in [0,1];
	// RobustnessVerdicts histograms scenario outcomes ("<kind>/<verdict>").
	RobustnessScores   []float64
	RobustnessVerdicts map[string]int
	// FingerprintSites counts records carrying an impersonation sweep,
	// FingerprintEcho those whose /fp endpoint answered, and
	// FingerprintDiffers those serving fingerprint-conditional responses.
	FingerprintSites, FingerprintEcho, FingerprintDiffers int
	// PingRTTsMillis holds minimum h2-PING RTT samples in milliseconds.
	PingRTTsMillis []float64
	// Failed and Canceled count stored records whose probe did not
	// complete; FailureKinds histograms them by classified kind.
	Failed, Canceled int
	FailureKinds     map[string]int
	// EngineStats holds any scan-summary trailer snapshots found in the
	// record stream (one per scan run that wrote the file).
	EngineStats []scan.Stats
}

// Analyze builds the aggregates from records.
func Analyze(records []Record) *Analysis {
	a := &Analysis{
		ServerNames:  make(map[string]int),
		TinyWindow:   make(map[core.TinyWindowClass]int),
		ZeroWUStream: make(map[core.Observation]int),
		LargeWUConn:  make(map[core.Observation]int),
		SelfDep:      make(map[core.Observation]int),
		FailureKinds: make(map[string]int),

		RobustnessVerdicts: make(map[string]int),
	}
	for i := range records {
		rec := &records[i]
		if rec.IsStatsTrailer() {
			a.EngineStats = append(a.EngineStats, *rec.Stats)
			continue
		}
		if rec.Robustness != nil {
			a.RobustnessScores = append(a.RobustnessScores, rec.Robustness.Value)
			for kind, verdict := range rec.Robustness.Verdicts {
				a.RobustnessVerdicts[fmt.Sprintf("%s/%s", kind, verdict)]++
			}
		}
		if rec.Fingerprint != nil {
			a.FingerprintSites++
			if rec.Fingerprint.EchoOK {
				a.FingerprintEcho++
			}
			if rec.Fingerprint.Differs {
				a.FingerprintDiffers++
			}
		}
		switch rec.Outcome {
		case scan.OutcomeFailed.String():
			a.Failed++
			if rec.ErrorKind != "" {
				a.FailureKinds[rec.ErrorKind]++
			}
		case scan.OutcomeCanceled.String():
			a.Canceled++
		}
		r := rec.Report
		if r == nil {
			continue
		}
		a.Records++
		if r.Settings != nil && r.Settings.ServerHeader != "" {
			a.ServerNames[r.Settings.ServerHeader]++
		}
		if r.FlowData != nil {
			a.TinyWindow[r.FlowData.Class]++
		}
		if r.ZeroWindowHeaders != nil && r.ZeroWindowHeaders.GotHeaders {
			a.ZeroWindowHeadersOK++
		}
		if r.ZeroWU != nil {
			a.ZeroWUStream[r.ZeroWU.Stream]++
		}
		if r.LargeWU != nil {
			a.LargeWUConn[r.LargeWU.Conn]++
		}
		if r.Priority != nil {
			if r.Priority.LastRuleOK {
				a.PriorityLast++
			}
			if r.Priority.FirstRuleOK {
				a.PriorityFirst++
			}
			if r.Priority.Pass {
				a.PriorityBoth++
			}
		}
		if r.SelfDep != nil {
			a.SelfDep[r.SelfDep.Reaction]++
		}
		if r.Push != nil && r.Push.Supported {
			a.PushSites++
			a.PushDomains = append(a.PushDomains, rec.Domain)
		}
		if r.HPACK != nil && r.HPACK.Ratio <= 1.0 {
			a.HPACKRatios = append(a.HPACKRatios, r.HPACK.Ratio)
		}
		if r.Ping != nil && r.Ping.Supported {
			a.PingRTTsMillis = append(a.PingRTTsMillis,
				float64(r.Ping.Min().Microseconds())/1000)
		}
	}
	sort.Strings(a.PushDomains)
	sort.Float64s(a.HPACKRatios)
	return a
}

// TopServers returns the Table IV rows with at least minCount sites.
func (a *Analysis) TopServers(minCount int) []struct {
	Name  string
	Count int
} {
	type row struct {
		Name  string
		Count int
	}
	rows := make([]row, 0, len(a.ServerNames))
	for name, c := range a.ServerNames {
		if c >= minCount {
			rows = append(rows, row{name, c})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Name < rows[j].Name
	})
	out := make([]struct {
		Name  string
		Count int
	}, len(rows))
	for i, r := range rows {
		out[i] = struct {
			Name  string
			Count int
		}{r.Name, r.Count}
	}
	return out
}

// HPACKRatioCDF returns the measured ratio distribution (Figs. 4/5 input).
func (a *Analysis) HPACKRatioCDF() *stats.CDF {
	return stats.NewCDF(a.HPACKRatios)
}

// String renders the analysis as a census-style report.
func (a *Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offline analysis of %d stored records\n", a.Records)
	if a.Failed > 0 || a.Canceled > 0 {
		fmt.Fprintf(&b, "  incomplete probes: %d failed / %d canceled (by kind: %v)\n",
			a.Failed, a.Canceled, a.FailureKinds)
	}
	for _, s := range a.EngineStats {
		fmt.Fprintf(&b, "  %s\n", s.String())
	}
	fmt.Fprintf(&b, "  tiny window: %d one-byte / %d zero-length / %d silent\n",
		a.TinyWindow[core.TinyWindowOneByte], a.TinyWindow[core.TinyWindowZeroLen],
		a.TinyWindow[core.TinyWindowNothing])
	fmt.Fprintf(&b, "  zero-window HEADERS: %d sites\n", a.ZeroWindowHeadersOK)
	fmt.Fprintf(&b, "  zero WU (stream): RST %d / GOAWAY %d / ignore %d\n",
		a.ZeroWUStream[core.ObserveRSTStream], a.ZeroWUStream[core.ObserveGoAway],
		a.ZeroWUStream[core.ObserveIgnore])
	fmt.Fprintf(&b, "  priority: last %d / first %d / both %d\n",
		a.PriorityLast, a.PriorityFirst, a.PriorityBoth)
	fmt.Fprintf(&b, "  push sites: %d %v\n", a.PushSites, a.PushDomains)
	if len(a.HPACKRatios) > 0 {
		cdf := a.HPACKRatioCDF()
		fmt.Fprintf(&b, "  HPACK ratio: p25 %.2f / p50 %.2f / p75 %.2f\n",
			cdf.Quantile(0.25), cdf.Quantile(0.5), cdf.Quantile(0.75))
	}
	if n := len(a.RobustnessScores); n > 0 {
		sum := 0.0
		for _, v := range a.RobustnessScores {
			sum += v
		}
		fmt.Fprintf(&b, "  robustness: %d sites scored, mean %.2f\n", n, sum/float64(n))
	}
	if a.FingerprintSites > 0 {
		fmt.Fprintf(&b, "  fingerprint: %d sites swept / %d echoed /fp / %d served by client\n",
			a.FingerprintSites, a.FingerprintEcho, a.FingerprintDiffers)
	}
	return b.String()
}
