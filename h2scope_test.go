package h2scope_test

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"h2scope"
	"h2scope/internal/netsim"
)

func TestRunTestbedReproducesTableIII(t *testing.T) {
	res, err := h2scope.RunTestbed()
	if err != nil {
		t.Fatalf("RunTestbed: %v", err)
	}
	if len(res.Families) != 6 {
		t.Fatalf("families = %v", res.Families)
	}
	cell := func(check, family string) string {
		ci := -1
		for i, c := range res.Checks {
			if c == check {
				ci = i
			}
		}
		fi := -1
		for i, f := range res.Families {
			if f == family {
				fi = i
			}
		}
		if ci < 0 || fi < 0 {
			t.Fatalf("no cell for %q/%q", check, family)
		}
		return res.Cells[ci][fi]
	}
	// Spot-check the divergent cells of the paper's Table III.
	tests := []struct {
		check, family, want string
	}{
		{"NPN", "apache", "no support"},
		{"NPN", "nginx", "support"},
		{"ALPN", "apache", "support"},
		{"Flow Control on HEADERS Frames", "litespeed", "yes"},
		{"Flow Control on HEADERS Frames", "h2o", "no"},
		{"Zero Window Update on stream", "nginx", "ignore"},
		{"Zero Window Update on stream", "litespeed", "RST_STREAM"},
		{"Zero Window Update on stream", "nghttpd", "GOAWAY"},
		{"Zero Window Update on connection", "tengine", "ignore"},
		{"Large Window Update (Connection)", "apache", "GOAWAY"},
		{"Large Window Update (Stream)", "apache", "RST_STREAM"},
		{"Server Push", "h2o", "yes"},
		{"Server Push", "nginx", "no"},
		{"Priority Mechanism Testing (Algorithm 1)", "apache", "pass"},
		{"Priority Mechanism Testing (Algorithm 1)", "tengine", "fail"},
		{"Self-dependent Stream", "litespeed", "ignore"},
		{"Self-dependent Stream", "nginx", "RST_STREAM"},
		{"Self-dependent Stream", "h2o", "GOAWAY"},
		{"Header Compression", "nginx", "support*"},
		{"Header Compression", "litespeed", "support"},
		{"HTTP/2 PING", "nghttpd", "support"},
		{"Request Multiplexing", "litespeed", "support"},
	}
	for _, tt := range tests {
		if got := cell(tt.check, tt.family); got != tt.want {
			t.Errorf("%s / %s = %q, want %q", tt.check, tt.family, got, tt.want)
		}
	}
	rendered := res.String()
	if !strings.Contains(rendered, "nginx") || !strings.Contains(rendered, "RST_STREAM") {
		t.Errorf("rendering incomplete:\n%s", rendered)
	}
}

func TestCensusRenderings(t *testing.T) {
	census := h2scope.NewCensus(h2scope.EpochJul2016, 0.05, 1)
	for name, out := range map[string]string{
		"adoption": census.Adoption(),
		"tableIV":  census.TableIV(10),
		"tableV":   census.TableV(),
		"tableVI":  census.TableVI(),
		"tableVII": census.TableVII(),
		"fig2":     census.Figure2Rendered(),
		"VD":       census.SectionVD(),
		"VE":       census.SectionVE(),
		"VF":       census.SectionVF(),
		"fig45":    census.Figures4And5Rendered(),
	} {
		if len(strings.TrimSpace(out)) == 0 {
			t.Errorf("%s rendering empty", name)
		}
	}
	if cdf := census.Figure2(); cdf.Len() == 0 {
		t.Error("Figure2 CDF empty")
	}
	// Fig. 2's headline: the majority of sites advertise >= 100 streams.
	if p := census.Figure2().At(99); p > 0.2 {
		t.Errorf("P(max streams <= 99) = %.2f, want small", p)
	}
}

func TestRunPushPageLoad(t *testing.T) {
	// Keep the time scale high enough that the saved round trip dominates
	// scheduling noise (the paper's point: push helps when latency is high).
	res, err := h2scope.RunPushPageLoad(h2scope.EpochJul2016, 2, 0.2, 3)
	if err != nil {
		t.Fatalf("RunPushPageLoad: %v", err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("series = %d, want 6 (the paper's first-experiment push sites)", len(res.Series))
	}
	lower := 0
	for _, s := range res.Series {
		if s.MeanOn < s.MeanOff {
			lower++
		}
	}
	// "enabling server push could reduce the page load time in most cases"
	if lower < 4 {
		t.Errorf("push lowered PLT on %d/6 sites, want most", lower)
	}
	if !strings.Contains(res.String(), "PLT push on") {
		t.Error("rendering incomplete")
	}
}

func TestRunRTTComparison(t *testing.T) {
	cmp, err := h2scope.RunRTTComparison(h2scope.EpochJan2017, 2, 2, 0.05, 9)
	if err != nil {
		t.Fatalf("RunRTTComparison: %v", err)
	}
	byMethod := cmp.ByMethod()
	if len(byMethod) != 4 {
		t.Fatalf("methods = %d, want 4", len(byMethod))
	}
	mean := func(vals []float64) float64 {
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals))
	}
	h1 := mean(byMethod["h1-request"])
	h2 := mean(byMethod["h2-ping"])
	if h1 <= h2 {
		t.Errorf("h1-request mean %.1f <= h2-ping mean %.1f, want larger", h1, h2)
	}
	if out := h2scope.RenderRTTComparison(cmp); !strings.Contains(out, "h2-ping") {
		t.Errorf("rendering incomplete:\n%s", out)
	}
}

func TestPublicFacadeServerAndProbe(t *testing.T) {
	// The README quickstart path, via the public API only.
	srv := h2scope.NewServer(h2scope.H2OProfile(), h2scope.DefaultSite("api.example"))
	l := netsim.NewListener("facade")
	go func() {
		_ = srv.Serve(l)
	}()
	t.Cleanup(srv.Close)

	report, err := h2scope.Probe(
		h2scope.DialerFunc(func() (net.Conn, error) { return l.Dial() }),
		h2scope.DefaultProbeConfig("api.example"))
	if err != nil {
		t.Fatalf("Probe: %v", err)
	}
	if report.PushVerdict() != "yes" {
		t.Errorf("PushVerdict = %q, want yes", report.PushVerdict())
	}
	if report.MinPingRTT() <= 0 {
		t.Error("MinPingRTT = 0")
	}

	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c, err := h2scope.DialClient(nc, h2scope.DefaultClientOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	resp, err := c.FetchBody(h2scope.Request{Authority: "api.example", Path: "/"}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status() != "200" {
		t.Errorf("status = %q", resp.Status())
	}
}

func TestScanPopulationFacade(t *testing.T) {
	pop := h2scope.GeneratePopulation(h2scope.EpochJul2016, 0.002, 4)
	sum, err := h2scope.ScanPopulation(pop, h2scope.ScanOptions{SampleSize: 10, Parallelism: 4, Seed: 2})
	if err != nil {
		t.Fatalf("ScanPopulation: %v", err)
	}
	if sum.Scanned != 10 {
		t.Fatalf("Scanned = %d", sum.Scanned)
	}
	if out := h2scope.RenderScan(sum); !strings.Contains(out, "Measured scan of 10 sites") {
		t.Errorf("RenderScan output:\n%s", out)
	}
}

func TestScanRecordPersistenceRoundTrip(t *testing.T) {
	pop := h2scope.GeneratePopulation(h2scope.EpochJul2016, 0.002, 6)
	sum, err := h2scope.ScanPopulation(pop, h2scope.ScanOptions{SampleSize: 6, Parallelism: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	when := time.Date(2016, 7, 5, 0, 0, 0, 0, time.UTC)
	if err := h2scope.WriteScanRecords(&buf, h2scope.EpochJul2016, when, sum); err != nil {
		t.Fatalf("WriteScanRecords: %v", err)
	}
	records, err := h2scope.ReadScanRecords(&buf)
	if err != nil {
		t.Fatalf("ReadScanRecords: %v", err)
	}
	if len(records) != 6 {
		t.Fatalf("records = %d, want 6", len(records))
	}
	for _, rec := range records {
		if rec.Report == nil || rec.Report.Settings == nil {
			t.Errorf("%s: report lost", rec.Domain)
		}
		if rec.ServerName == "" {
			t.Errorf("%s: server name missing", rec.Domain)
		}
	}
	offline := h2scope.SummarizeScanRecords(records)
	if offline.Records != 6 {
		t.Errorf("offline summary records = %d", offline.Records)
	}
}

func TestCensusDeterministicAcrossInstances(t *testing.T) {
	a := h2scope.NewCensus(h2scope.EpochJan2017, 0.02, 5)
	b := h2scope.NewCensus(h2scope.EpochJan2017, 0.02, 5)
	if a.TableV() != b.TableV() || a.TableIV(5) != b.TableIV(5) || a.SectionVD() != b.SectionVD() {
		t.Fatal("same seed produced different census renderings")
	}
	// Aggregate tables are seed-invariant by construction (the marginals
	// are the paper's); per-site assignments are what the seed varies.
	c := h2scope.NewCensus(h2scope.EpochJan2017, 0.02, 6)
	differs := false
	for i := range a.Pop.Sites {
		if a.Pop.Sites[i] != c.Pop.Sites[i] {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical site assignments")
	}
}

func TestTableIIIChecksIsACopy(t *testing.T) {
	a := h2scope.TableIIIChecks()
	a[0] = "mutated"
	b := h2scope.TableIIIChecks()
	if b[0] == "mutated" {
		t.Fatal("TableIIIChecks leaks internal state")
	}
	if len(b) != 14 {
		t.Fatalf("checks = %d, want 14", len(b))
	}
}
