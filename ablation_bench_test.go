// Ablation benchmarks for the design choices DESIGN.md calls out: the
// server's scheduling modes, the HPACK indexing policies, the advertised
// maximum frame size, and the DoS angles of the paper's Discussion section.
package h2scope_test

import (
	"fmt"
	"testing"
	"time"

	"h2scope"
	"h2scope/internal/frame"
	"h2scope/internal/h2conn"
	"h2scope/internal/netsim"
	"h2scope/internal/pageload"
)

// startBenchServer launches a profile server and returns its listener.
func startBenchServer(b *testing.B, p h2scope.Profile) *netsim.Listener {
	b.Helper()
	srv := h2scope.NewServer(p, h2scope.DefaultSite("ablation.example"))
	l := netsim.NewListener(p.Family + "-ablation")
	go func() {
		_ = srv.Serve(l)
	}()
	b.Cleanup(srv.Close)
	return l
}

// BenchmarkAblationSchedulingModes transfers six prioritized streams under
// each scheduling mode: priority scheduling changes ordering, not cost.
func BenchmarkAblationSchedulingModes(b *testing.B) {
	modes := []h2scope.SchedulingMode{
		h2scope.SchedRoundRobin,
		h2scope.SchedPriority,
		h2scope.SchedPriorityLastOnly,
		h2scope.SchedPriorityFirstOnly,
	}
	for _, mode := range modes {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			p := h2scope.H2OProfile()
			p.Scheduling = mode
			l := startBenchServer(b, p)
			b.SetBytes(6 * 96 * 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nc, err := l.Dial()
				if err != nil {
					b.Fatal(err)
				}
				c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				var parent uint32
				ids := make([]uint32, 0, 6)
				for s := 1; s <= 6; s++ {
					id := c.NextStreamID()
					req := h2conn.Request{
						Authority: "ablation.example",
						Path:      fmt.Sprintf("/large/%d", s),
						Priority:  frame.PriorityParam{StreamDep: parent, Weight: 15},
					}
					if err := c.OpenStreamID(id, req); err != nil {
						b.Fatal(err)
					}
					parent = id
					ids = append(ids, id)
				}
				if _, err := c.WaitFor(30*time.Second, func(evs []h2conn.Event) bool {
					done := 0
					for _, e := range evs {
						if e.Type == frame.TypeData && e.StreamEnded() {
							done++
						}
					}
					return done >= len(ids)
				}); err != nil {
					b.Fatal(err)
				}
				_ = c.Close()
			}
		})
	}
}

// BenchmarkAblationHPACKPolicies measures response-header bytes on the wire
// under each indexing policy over repeated identical requests — the
// mechanism behind Figs. 4 and 5.
func BenchmarkAblationHPACKPolicies(b *testing.B) {
	policies := []struct {
		name string
		prep func() h2scope.Profile
	}{
		{"index-all", func() h2scope.Profile { return h2scope.H2OProfile() }},
		{"no-dynamic-insert", func() h2scope.Profile { return h2scope.NginxProfile() }},
		{"partial-0.5", func() h2scope.Profile {
			p := h2scope.H2OProfile()
			pop := h2scope.GeneratePopulation(h2scope.EpochJul2016, 0.001, 1)
			// Borrow a mid-ratio site's profile for a calibrated partial policy.
			for i := range pop.Sites {
				if r := pop.Sites[i].HPACKRatio; r > 0.4 && r < 0.7 {
					return pop.Sites[i].Profile()
				}
			}
			return p
		}},
	}
	for _, pol := range policies {
		pol := pol
		b.Run(pol.name, func(b *testing.B) {
			l := startBenchServer(b, pol.prep())
			const requests = 8
			b.ResetTimer()
			var headerBytes, firstBytes int64
			for i := 0; i < b.N; i++ {
				nc, err := l.Dial()
				if err != nil {
					b.Fatal(err)
				}
				c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				for r := 0; r < requests; r++ {
					resp, err := c.FetchBody(h2conn.Request{
						Authority: "ablation.example", Path: "/about.html",
					}, 10*time.Second)
					if err != nil {
						b.Fatal(err)
					}
					headerBytes += int64(resp.HeaderBlockLen)
					if r == 0 {
						firstBytes += int64(resp.HeaderBlockLen)
					}
				}
				_ = c.Close()
			}
			b.ReportMetric(float64(headerBytes)/float64(b.N)/requests, "hdrB/req")
			b.ReportMetric(float64(headerBytes)/float64(firstBytes*requests), "ratio")
		})
	}
}

// BenchmarkAblationMaxFrameSize sweeps the client's SETTINGS_MAX_FRAME_SIZE
// (the Table VI dimension) over a bulk transfer.
func BenchmarkAblationMaxFrameSize(b *testing.B) {
	for _, size := range []uint32{16_384, 65_536, 1_048_576} {
		size := size
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			l := startBenchServer(b, h2scope.NginxProfile())
			opts := h2conn.DefaultOptions()
			opts.EventLogLimit = 4096
			opts.Settings = []frame.Setting{{ID: frame.SettingMaxFrameSize, Val: size}}
			nc, err := l.Dial()
			if err != nil {
				b.Fatal(err)
			}
			c, err := h2conn.Dial(nc, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() {
				_ = c.Close()
			})
			b.SetBytes(96 * 1024)
			b.ResetTimer()
			var frames int64
			for i := 0; i < b.N; i++ {
				resp, err := c.FetchBody(h2conn.Request{
					Authority: "ablation.example", Path: "/large/1",
				}, 10*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				frames += int64(len(resp.DataFrameSizes))
			}
			b.ReportMetric(float64(frames)/float64(b.N), "frames/op")
		})
	}
}

// BenchmarkDoSTinyWindowPinning measures the malicious-receiver attack of
// the Discussion section: bytes a server must keep queued per connection
// when the client pins the stream window to one byte.
func BenchmarkDoSTinyWindowPinning(b *testing.B) {
	l := startBenchServer(b, h2scope.ApacheProfile())
	const streams = 8
	b.ResetTimer()
	var pinned int64
	for i := 0; i < b.N; i++ {
		nc, err := l.Dial()
		if err != nil {
			b.Fatal(err)
		}
		opts := h2conn.Options{
			Settings:        []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: 1}},
			AutoSettingsAck: true,
			AutoPingAck:     true,
		}
		c, err := h2conn.Dial(nc, opts)
		if err != nil {
			b.Fatal(err)
		}
		for s := 1; s <= streams; s++ {
			if _, err := c.OpenStream(h2conn.Request{
				Authority: "ablation.example", Path: fmt.Sprintf("/large/%d", s),
			}); err != nil {
				b.Fatal(err)
			}
		}
		events := c.WaitQuiet(5*time.Millisecond, time.Second)
		received := 0
		for _, e := range events {
			received += len(e.Data)
		}
		pinned += int64(streams*96*1024 - received)
		_ = c.Close()
	}
	b.ReportMetric(float64(pinned)/float64(b.N)/1024, "pinnedKiB/conn")
}

// BenchmarkDoSReprioritizationChurn measures server-side PRIORITY frame
// processing throughput, the algorithmic-complexity surface the paper's
// Discussion flags.
func BenchmarkDoSReprioritizationChurn(b *testing.B) {
	l := startBenchServer(b, h2scope.ApacheProfile())
	nc, err := l.Dial()
	if err != nil {
		b.Fatal(err)
	}
	c, err := h2conn.Dial(nc, h2conn.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		_ = c.Close()
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint32(2*(i%128) + 1)
		dep := uint32(2*((i+31)%128) + 1)
		if dep == id {
			dep = 0
		}
		if err := c.WritePriority(id, frame.PriorityParam{
			StreamDep: dep, Exclusive: i%2 == 0, Weight: uint8(i),
		}); err != nil {
			b.Fatal(err)
		}
		// Periodically synchronize so the measurement covers server-side
		// processing, not just enqueueing into the in-process pipe (and so
		// the pipe never holds millions of unprocessed frames).
		if i%50_000 == 49_999 {
			if _, err := c.Ping([8]byte{'s', 'y', 'n', 'c', byte(i)}, 30*time.Second); err != nil {
				b.Fatalf("server unresponsive mid-churn: %v", err)
			}
		}
	}
	b.StopTimer()
	// Confirm the server survived the churn.
	if _, err := c.Ping([8]byte{'c', 'h', 'u', 'r', 'n'}, 30*time.Second); err != nil {
		b.Fatalf("server unresponsive: %v", err)
	}
}

// BenchmarkAblationFlowControlHeaders compares response-start latency with
// and without the LiteSpeed misbehavior of withholding HEADERS.
func BenchmarkAblationFlowControlHeaders(b *testing.B) {
	for _, fch := range []bool{false, true} {
		fch := fch
		name := "compliant"
		if fch {
			name = "flow-control-on-headers"
		}
		b.Run(name, func(b *testing.B) {
			p := h2scope.ApacheProfile()
			p.FlowControlHeaders = fch
			l := startBenchServer(b, p)
			b.ResetTimer()
			got := 0
			for i := 0; i < b.N; i++ {
				nc, err := l.Dial()
				if err != nil {
					b.Fatal(err)
				}
				opts := h2conn.Options{
					Settings:        []frame.Setting{{ID: frame.SettingInitialWindowSize, Val: 0}},
					AutoSettingsAck: true,
				}
				c, err := h2conn.Dial(nc, opts)
				if err != nil {
					b.Fatal(err)
				}
				id, err := c.OpenStream(h2conn.Request{Authority: "ablation.example", Path: "/large/1"})
				if err != nil {
					b.Fatal(err)
				}
				events, _ := c.WaitFor(60*time.Millisecond, func(evs []h2conn.Event) bool {
					for _, e := range evs {
						if e.Type == frame.TypeHeaders && e.StreamID == id {
							return true
						}
					}
					return false
				})
				for _, e := range events {
					if e.Type == frame.TypeHeaders && e.StreamID == id {
						got++
					}
				}
				_ = c.Close()
			}
			b.ReportMetric(float64(got)/float64(b.N), "headers/op")
		})
	}
}

// BenchmarkDoSPushWasteWarmCache quantifies the Discussion section's push
// bandwidth waste: a fully warm client cache still receives every pushed
// byte.
func BenchmarkDoSPushWasteWarmCache(b *testing.B) {
	site := h2scope.DefaultSite("waste.example")
	srv := h2scope.NewServer(h2scope.H2OProfile(), site)
	l := netsim.NewListener("push-waste")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()
	resources := []string{"/static/style.css", "/static/app.js"}
	var wasted int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nc, err := l.Dial()
		if err != nil {
			b.Fatal(err)
		}
		stats, err := pageload.LoadWithStats(nc, pageload.Config{
			Authority: "waste.example", Page: "/", Resources: resources,
			EnablePush: true, Timeout: 10 * time.Second,
		}, resources)
		if err != nil {
			b.Fatal(err)
		}
		wasted += int64(stats.WastedPushBytes)
	}
	b.ReportMetric(float64(wasted)/float64(b.N)/1024, "wastedKiB/visit")
}
