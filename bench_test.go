// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section V). Each BenchmarkTableN / BenchmarkFigureN / BenchmarkSection5X
// runs the corresponding experiment end to end and logs the rows the paper
// reports; `go test -bench . -benchmem` therefore doubles as the
// reproduction harness. Microbenchmarks of the protocol substrates follow.
package h2scope_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"h2scope"
	"h2scope/internal/conformance"
	"h2scope/internal/frame"
	"h2scope/internal/h2load"
	"h2scope/internal/hpack"
	"h2scope/internal/netsim"
	"h2scope/internal/priority"
	"h2scope/internal/stats"
)

// logOnce writes an experiment artifact into the benchmark log on the first
// iteration only, so -bench output carries the reproduced tables without
// drowning in repeats.
func logOnce(b *testing.B, i int, format string, args ...any) {
	b.Helper()
	if i == 0 {
		b.Logf(format, args...)
	}
}

// BenchmarkTable3ConformanceMatrix re-measures Table III: the full H2Scope
// battery against the six emulated server implementations.
func BenchmarkTable3ConformanceMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := h2scope.RunTestbed()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, "Table III (re-measured):\n%s", res)
	}
}

// BenchmarkSection5BAdoption regenerates the Section V-B adoption counts
// for both experiments.
func BenchmarkSection5BAdoption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, epoch := range []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017} {
			census := h2scope.NewCensus(epoch, 1.0, 42)
			logOnce(b, i, "Adoption, %s:\n%s", epoch, census.Adoption())
		}
	}
}

// BenchmarkTable4ServerAdoption regenerates Table IV (servers used by more
// than 1,000 sites) for both experiments.
func BenchmarkTable4ServerAdoption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, epoch := range []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017} {
			census := h2scope.NewCensus(epoch, 1.0, 42)
			logOnce(b, i, "Table IV, %s:\n%s", epoch, census.TableIV(1000))
		}
	}
}

// BenchmarkTable5InitialWindowSize regenerates Table V.
func BenchmarkTable5InitialWindowSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, epoch := range []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017} {
			census := h2scope.NewCensus(epoch, 1.0, 42)
			logOnce(b, i, "Table V, %s:\n%s", epoch, census.TableV())
		}
	}
}

// BenchmarkTable6MaxFrameSize regenerates Table VI.
func BenchmarkTable6MaxFrameSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, epoch := range []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017} {
			census := h2scope.NewCensus(epoch, 1.0, 42)
			logOnce(b, i, "Table VI, %s:\n%s", epoch, census.TableVI())
		}
	}
}

// BenchmarkTable7MaxHeaderListSize regenerates Table VII.
func BenchmarkTable7MaxHeaderListSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, epoch := range []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017} {
			census := h2scope.NewCensus(epoch, 1.0, 42)
			logOnce(b, i, "Table VII, %s:\n%s", epoch, census.TableVII())
		}
	}
}

// BenchmarkFigure2MaxConcurrentStreams regenerates Fig. 2's CDF of
// SETTINGS_MAX_CONCURRENT_STREAMS.
func BenchmarkFigure2MaxConcurrentStreams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, epoch := range []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017} {
			census := h2scope.NewCensus(epoch, 1.0, 42)
			cdf := census.Figure2()
			logOnce(b, i, "Figure 2, %s (P(X<=100)=%.2f):\n%s",
				epoch, cdf.At(100), census.Figure2Rendered())
		}
	}
}

// BenchmarkSection5DFlowControl regenerates the Section V-D flow-control
// counts, then verifies a measured sample agrees with the generator.
func BenchmarkSection5DFlowControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		census := h2scope.NewCensus(h2scope.EpochJan2017, 1.0, 42)
		logOnce(b, i, "Section V-D, %s:\n%s", h2scope.EpochJan2017, census.SectionVD())
		if i == 0 {
			sum, err := h2scope.ScanPopulation(census.Pop, h2scope.ScanOptions{
				SampleSize: 24, Parallelism: 8, Seed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("Measured sample:\n%s", h2scope.RenderScan(sum))
		}
	}
}

// BenchmarkSection5EPriority regenerates the Section V-E priority counts.
func BenchmarkSection5EPriority(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, epoch := range []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017} {
			census := h2scope.NewCensus(epoch, 1.0, 42)
			logOnce(b, i, "Section V-E, %s:\n%s", epoch, census.SectionVE())
		}
	}
}

// BenchmarkSection5FServerPush regenerates the Section V-F push census.
func BenchmarkSection5FServerPush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, epoch := range []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017} {
			census := h2scope.NewCensus(epoch, 1.0, 42)
			logOnce(b, i, "Section V-F, %s:\n%s", epoch, census.SectionVF())
		}
	}
}

// BenchmarkFigure3PushPageLoad regenerates Fig. 3: page-load time with and
// without server push on the push-capable sites.
func BenchmarkFigure3PushPageLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := h2scope.RunPushPageLoad(h2scope.EpochJul2016, 2, 0.2, 3)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, "Figure 3 (means over %d visits):\n%s", res.Visits, res)
	}
}

// BenchmarkFigure4And5HPACKRatio regenerates the per-family HPACK
// compression-ratio CDFs for both experiments.
func BenchmarkFigure4And5HPACKRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, epoch := range []h2scope.Epoch{h2scope.EpochJul2016, h2scope.EpochJan2017} {
			census := h2scope.NewCensus(epoch, 1.0, 42)
			fig := "Figure 4"
			if epoch == h2scope.EpochJan2017 {
				fig = "Figure 5"
			}
			logOnce(b, i, "%s, %s:\n%s", fig, epoch, census.Figures4And5Rendered())
		}
	}
}

// BenchmarkFigure6RTTComparison regenerates Fig. 6: RTT by HTTP/2 PING,
// ICMP, TCP handshake, and HTTP/1.1 request timing.
func BenchmarkFigure6RTTComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := h2scope.RunRTTComparison(h2scope.EpochJan2017, 2, 2, 0.25, 9)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, "Figure 6:\n%s", h2scope.RenderRTTComparison(cmp))
	}
}

// --- substrate microbenchmarks ---

func benchHeaderFields() []hpack.HeaderField {
	return []hpack.HeaderField{
		{Name: ":status", Value: "200"},
		{Name: "server", Value: "nginx/1.9.15"},
		{Name: "date", Value: "Tue, 05 Jul 2016 10:00:00 GMT"},
		{Name: "content-type", Value: "text/html; charset=utf-8"},
		{Name: "content-length", Value: "8192"},
		{Name: "etag", Value: "\"57838f70-264\""},
		{Name: "vary", Value: "accept-encoding"},
	}
}

// BenchmarkHPACKEncode measures header-block encoding with full indexing.
func BenchmarkHPACKEncode(b *testing.B) {
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	fields := benchHeaderFields()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = enc.EncodeBlock(fields)
	}
}

// BenchmarkHPACKDecode measures header-block decoding.
func BenchmarkHPACKDecode(b *testing.B) {
	enc := hpack.NewEncoder(hpack.PolicyIndexAll)
	fields := benchHeaderFields()
	block := enc.EncodeBlock(fields)
	dec := hpack.NewDecoder(hpack.DefaultDynamicTableSize)
	if _, err := dec.DecodeFull(block); err != nil {
		b.Fatal(err)
	}
	steady := enc.EncodeBlock(fields)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeFull(steady); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHuffmanRoundTrip measures Huffman coding of a typical value.
func BenchmarkHuffmanRoundTrip(b *testing.B) {
	enc := hpack.NewEncoder(hpack.PolicyNoDynamicInsert)
	fields := []hpack.HeaderField{{Name: "x-request-id", Value: "d41d8cd98f00b204e9800998ecf8427e"}}
	dec := hpack.NewDecoder(hpack.DefaultDynamicTableSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		block := enc.EncodeBlock(fields)
		if _, err := dec.DecodeFull(block); err != nil {
			b.Fatal(err)
		}
	}
}

// discardWriter satisfies io.Writer without retaining data.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkFramerWriteData measures DATA frame serialization.
func BenchmarkFramerWriteData(b *testing.B) {
	fr := frame.NewFramer(discardWriter{}, nil)
	payload := make([]byte, 16384)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fr.WriteData(1, false, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPriorityTreeReprioritize measures dependency-tree updates with
// the exclusive flag — the operation the paper's Discussion flags as an
// algorithmic-complexity attack surface.
func BenchmarkPriorityTreeReprioritize(b *testing.B) {
	tree := priority.NewTree()
	const n = 64
	for id := uint32(1); id <= 2*n; id += 2 {
		if err := tree.Add(id, priority.Param{StreamDep: 0, Weight: 15}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint32(2*(i%n) + 1)
		dep := uint32(2*((i+7)%n) + 1)
		if dep == id {
			dep = 0
		}
		if err := tree.Update(id, priority.Param{StreamDep: dep, Exclusive: i%2 == 0, Weight: 15}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerPick measures weighted stream selection.
func BenchmarkSchedulerPick(b *testing.B) {
	tree := priority.NewTree()
	for id := uint32(1); id <= 32; id += 2 {
		if err := tree.Add(id, priority.Param{StreamDep: 0, Weight: uint8(id * 7)}); err != nil {
			b.Fatal(err)
		}
	}
	sched := priority.NewScheduler(tree)
	ready := func(uint32) bool { return true }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := sched.Pick(ready); !ok {
			b.Fatal("no pick")
		}
	}
}

// BenchmarkServerGET measures end-to-end request/response throughput of
// the server engine over an in-process connection.
func BenchmarkServerGET(b *testing.B) {
	srv := h2scope.NewServer(h2scope.H2OProfile(), h2scope.DefaultSite("bench.example"))
	l := netsim.NewListener("bench")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()
	nc, err := l.Dial()
	if err != nil {
		b.Fatal(err)
	}
	opts := h2scope.DefaultClientOptions()
	opts.EventLogLimit = 4096
	c, err := h2scope.DialClient(nc, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	req := h2scope.Request{Authority: "bench.example", Path: "/about.html"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.FetchBody(req, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Status() != "200" {
			b.Fatalf("status %s", resp.Status())
		}
	}
}

// BenchmarkServerLargeTransfer measures bulk DATA throughput.
func BenchmarkServerLargeTransfer(b *testing.B) {
	srv := h2scope.NewServer(h2scope.NginxProfile(), h2scope.DefaultSite("bench.example"))
	l := netsim.NewListener("bench-large")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()
	nc, err := l.Dial()
	if err != nil {
		b.Fatal(err)
	}
	lopts := h2scope.DefaultClientOptions()
	lopts.EventLogLimit = 4096
	c, err := h2scope.DialClient(nc, lopts)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		_ = c.Close()
	}()
	req := h2scope.Request{Authority: "bench.example", Path: "/large/1"}
	b.SetBytes(96 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.FetchBody(req, 10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Body) != 96*1024 {
			b.Fatalf("body %d", len(resp.Body))
		}
	}
}

// BenchmarkPopulationGenerate measures full-scale population synthesis.
func BenchmarkPopulationGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pop := h2scope.GeneratePopulation(h2scope.EpochJan2017, 1.0, int64(i))
		if len(pop.Sites) != 64_299 {
			b.Fatalf("sites = %d", len(pop.Sites))
		}
	}
}

// BenchmarkProbeBattery measures one full H2Scope battery against a single
// live server — the per-site cost of the paper's 1M-site scan.
func BenchmarkProbeBattery(b *testing.B) {
	srv := h2scope.NewServer(h2scope.ApacheProfile(), h2scope.DefaultSite("probe.example"))
	l := netsim.NewListener("probe-bench")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()
	cfg := h2scope.DefaultProbeConfig("probe.example")
	cfg.QuietWindow = 5 * time.Millisecond
	dialer := h2scope.DialerFunc(func() (net.Conn, error) { return l.Dial() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := h2scope.Probe(dialer, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(report.Errors) > 0 {
			b.Fatal(report.Errors)
		}
	}
}

// BenchmarkCDF measures the stats substrate on a Fig. 2-sized sample.
func BenchmarkCDF(b *testing.B) {
	samples := make([]float64, 64_000)
	for i := range samples {
		samples[i] = float64(i%997) + 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdf := stats.NewCDF(samples)
		if cdf.Quantile(0.5) <= 0 {
			b.Fatal("bad quantile")
		}
	}
}

// BenchmarkConformanceSuite measures the full 17-check RFC 7540 suite
// against a live server — the per-target cost of an h2spec-style scan.
func BenchmarkConformanceSuite(b *testing.B) {
	srv := h2scope.NewServer(h2scope.ApacheProfile(), h2scope.DefaultSite("conform.example"))
	l := netsim.NewListener("conform-bench")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()
	env := &conformance.Env{
		Dialer:         h2scope.DialerFunc(func() (net.Conn, error) { return l.Dial() }),
		Authority:      "conform.example",
		ReactionWindow: 50 * time.Millisecond,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := conformance.RunSuite(env)
		if fails := conformance.Failures(results); len(fails) > 0 {
			b.Fatalf("failures: %v", fails)
		}
		logOnce(b, i, "Conformance: %s", conformance.Summary(results))
	}
}

// BenchmarkPopulationScan measures the thread-pooled scanner's throughput
// (Section IV-B): sites fully probed per second.
func BenchmarkPopulationScan(b *testing.B) {
	pop := h2scope.GeneratePopulation(h2scope.EpochJan2017, 0.003, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := h2scope.ScanPopulation(pop, h2scope.ScanOptions{
			SampleSize: 16, Parallelism: 8, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if sum.Scanned != 16 {
			b.Fatalf("scanned %d", sum.Scanned)
		}
	}
	b.ReportMetric(16*float64(b.N)/b.Elapsed().Seconds(), "sites/s")
}

// BenchmarkHuffmanDecode measures Huffman decoding of a typical header
// value through the public decoder.
func BenchmarkHuffmanDecode(b *testing.B) {
	enc := hpack.NewEncoder(hpack.PolicyNoDynamicInsert)
	block := enc.EncodeBlock([]hpack.HeaderField{
		{Name: "x-url", Value: "https://www.example.com/assets/app.min.js?v=20160705"},
	})
	dec := hpack.NewDecoder(hpack.DefaultDynamicTableSize)
	b.SetBytes(int64(len(block)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeFull(block); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkH2LoadThroughput measures server throughput under multiplexed
// load: 4 connections x 8 concurrent streams.
func BenchmarkH2LoadThroughput(b *testing.B) {
	srv := h2scope.NewServer(h2scope.H2OProfile(), h2scope.DefaultSite("load.example"))
	l := netsim.NewListener("h2load-bench")
	go func() {
		_ = srv.Serve(l)
	}()
	defer srv.Close()
	dial := func() (net.Conn, error) { return l.Dial() }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := h2load.Run(dial, h2load.Options{
			Connections:    4,
			StreamsPerConn: 8,
			Requests:       500,
			Authority:      "load.example",
			Path:           "/about.html",
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Errors > 0 {
			b.Fatalf("%d errors", res.Errors)
		}
		b.ReportMetric(res.RequestsPerSecond(), "req/s")
		logOnce(b, i, "h2load: %s", res)
	}
}

// BenchmarkServeThroughput saturates the sharded server data plane over
// loopback: many connections striped across driver threads, deep stream
// batches, and the zero-alloc serve path on the far side. The sub-benchmarks
// sweep the shard count so the per-shard scaling trajectory lands in the CI
// bench artifacts alongside the absolute req/s figure.
func BenchmarkServeThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv := h2scope.NewServer(h2scope.NghttpdProfile(), h2scope.DefaultSite("serve.example"))
			srv.Shards = shards
			l := netsim.NewListener(fmt.Sprintf("serve-bench-%d", shards))
			go func() {
				_ = srv.Serve(l)
			}()
			defer srv.Close()
			dial := func() (net.Conn, error) { return l.Dial() }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := h2load.Run(dial, h2load.Options{
					Connections:    2 * shards,
					Threads:        shards,
					StreamsPerConn: 64,
					Requests:       20000,
					Authority:      "serve.example",
					Path:           "/about.html",
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Errors > 0 {
					b.Fatalf("%d errors", res.Errors)
				}
				b.ReportMetric(res.RequestsPerSecond(), "req/s")
				logOnce(b, i, "serve: %s", res)
			}
		})
	}
}
